"""Execution logs: the emulator's equivalent of AWS REPORT lines.

The paper "performs 100 invocations and collects metrics from the AWS
Lambda execution log", querying per-invocation start type, init duration,
billed duration, and memory.  :class:`InvocationRecord` carries exactly
those fields (plus the unbilled phase breakdown of Figure 1), and
:class:`ExecutionLog` provides the query surface the analysis layer uses.

:class:`LogQuery` is the CloudWatch-Logs-Insights-style half of that
surface: a lazy filter / group-by / aggregate builder over REPORT fields
(``log.query().cold().group_by("function").aggregate(p95="p95:e2e_s")``),
with aggregation specs named the way an Insights query names them
(``count``, ``sum:field``, ``mean:field``, ``min:``/``max:``,
``pNN:field``).  Logs also round-trip through JSON lines so a saved run
can be re-queried offline.
"""

from __future__ import annotations

import enum
import json
import math
import statistics
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "StartType",
    "InvocationStatus",
    "STATUSES",
    "InvocationRecord",
    "ExecutionLog",
    "LogQuery",
    "GroupedLogQuery",
]


class StartType(str, enum.Enum):
    """Whether an invocation paid initialization (cold) or reused state."""

    COLD = "cold"
    WARM = "warm"
    #: The request was throttled before any instance work happened.
    THROTTLED = "throttled"


class InvocationStatus(str, enum.Enum):
    """How an invocation ended, Lambda-style.

    ``SUCCESS`` and ``ERROR`` are the application outcomes the paper's
    oracle distinguishes; the remaining four are *platform* outcomes:
    the configured ``timeout_s`` fired, the memory ceiling OOM-killed the
    instance, concurrency control rejected the request, or the instance
    crashed (injected via :mod:`repro.platform.faults`).  Timeouts and
    OOM kills are billed, throttles are not — matching AWS billing.
    """

    SUCCESS = "success"
    ERROR = "error"
    TIMEOUT = "timeout"
    OOM = "oom"
    THROTTLED = "throttled"
    CRASHED = "crashed"


#: Every status value, in a stable rendering order.
STATUSES = tuple(status.value for status in InvocationStatus)


@dataclass(frozen=True)
class InvocationRecord:
    """One invocation's full accounting (an AWS REPORT line, enriched).

    Durations are virtual seconds.  ``instance_init_s`` and
    ``transmission_s`` are the unbilled platform phases of Figure 1 (zero
    on warm starts); ``init_duration_s`` is the billed Function
    Initialization; ``restore_duration_s`` replaces it under SnapStart.
    """

    request_id: str
    function: str
    start_type: StartType
    timestamp: float
    value: Any
    instance_id: str
    instance_init_s: float = 0.0
    transmission_s: float = 0.0
    init_duration_s: float = 0.0
    restore_duration_s: float = 0.0
    exec_duration_s: float = 0.0
    routing_s: float = 0.0
    billed_duration_s: float = 0.0
    memory_config_mb: int = 128
    peak_memory_mb: float = 0.0
    cost_usd: float = 0.0
    error_type: str | None = None
    status: InvocationStatus = InvocationStatus.SUCCESS

    def __post_init__(self) -> None:
        # Normalise: accept plain strings, and derive ERROR for records
        # built by pre-status code paths that only set ``error_type``.
        status = InvocationStatus(self.status)
        if status is InvocationStatus.SUCCESS and self.error_type is not None:
            status = InvocationStatus.ERROR
        object.__setattr__(self, "status", status)

    @property
    def e2e_s(self) -> float:
        """End-to-end latency: request to response (Section 2.2.2)."""
        return (
            self.routing_s
            + self.instance_init_s
            + self.transmission_s
            + self.init_duration_s
            + self.restore_duration_s
            + self.exec_duration_s
        )

    @property
    def is_cold(self) -> bool:
        return self.start_type is StartType.COLD

    @property
    def ok(self) -> bool:
        return self.status is InvocationStatus.SUCCESS

    @property
    def billed(self) -> bool:
        """Whether the platform charges for this invocation (throttles are
        the only unbilled outcome; timeouts and OOM kills are billed)."""
        return self.status is not InvocationStatus.THROTTLED

    def report_line(self) -> str:
        """Render like an AWS Lambda REPORT log line."""
        return (
            f"REPORT RequestId: {self.request_id}\t"
            f"Duration: {self.exec_duration_s * 1000:.2f} ms\t"
            f"Billed Duration: {self.billed_duration_s * 1000:.0f} ms\t"
            f"Memory Size: {self.memory_config_mb} MB\t"
            f"Max Memory Used: {self.peak_memory_mb:.0f} MB\t"
            + (
                f"Init Duration: {self.init_duration_s * 1000:.2f} ms"
                if self.is_cold
                else ""
            )
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict (``value`` must itself be JSON-serializable)."""
        return {
            "request_id": self.request_id,
            "function": self.function,
            "start_type": self.start_type.value,
            "timestamp": self.timestamp,
            "value": self.value,
            "instance_id": self.instance_id,
            "instance_init_s": self.instance_init_s,
            "transmission_s": self.transmission_s,
            "init_duration_s": self.init_duration_s,
            "restore_duration_s": self.restore_duration_s,
            "exec_duration_s": self.exec_duration_s,
            "routing_s": self.routing_s,
            "billed_duration_s": self.billed_duration_s,
            "memory_config_mb": self.memory_config_mb,
            "peak_memory_mb": self.peak_memory_mb,
            "cost_usd": self.cost_usd,
            "error_type": self.error_type,
            "status": self.status.value,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "InvocationRecord":
        known = {f.name for f in dataclass_fields(cls)}
        payload = {k: v for k, v in data.items() if k in known}
        payload["start_type"] = StartType(payload["start_type"])
        if "status" in payload:  # pre-status JSONL logs omit the field
            payload["status"] = InvocationStatus(payload["status"])
        return cls(**payload)


def _percentile(values: list[float], q: float) -> float:
    """Exact order statistic at rank ``floor(q * (n - 1))`` — the same
    convention :class:`~repro.obs.histogram.LogLinearHistogram` sketches."""
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[int(math.floor(q * (len(ordered) - 1)))]


def _parse_aggregate(spec: str) -> Callable[[list[InvocationRecord]], float]:
    """Compile an Insights-style spec (``count``, ``sum:cost_usd``,
    ``mean:e2e_s``, ``p99:e2e_s``...) into an aggregator function."""
    if spec == "count":
        return lambda records: float(len(records))
    op, _, field_name = spec.partition(":")
    if not field_name:
        raise ValueError(
            f"aggregate spec {spec!r} needs a field, e.g. '{op or 'sum'}:cost_usd'"
        )

    def values(records: list[InvocationRecord]) -> list[float]:
        return [float(getattr(r, field_name)) for r in records]

    if op == "sum":
        return lambda records: sum(values(records))
    if op == "mean":
        return lambda records: statistics.fmean(values(records)) if records else 0.0
    if op == "min":
        return lambda records: min(values(records), default=0.0)
    if op == "max":
        return lambda records: max(values(records), default=0.0)
    if op.startswith("p"):
        try:
            q = float(op[1:]) / 100.0
        except ValueError:
            q = -1.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"bad percentile in aggregate spec {spec!r}")
        return lambda records: _percentile(values(records), q)
    raise ValueError(
        f"unknown aggregate op {op!r} (count, sum, mean, min, max, pNN)"
    )


class LogQuery:
    """A lazy, chainable filter / group-by / aggregate over REPORT records.

    Chaining copies the predicate list, never the records, so building up
    a query is cheap; records are only touched by the terminal calls
    (:meth:`records`, :meth:`count`, :meth:`aggregate`).
    """

    def __init__(
        self,
        records: Iterable[InvocationRecord],
        predicates: tuple[Callable[[InvocationRecord], bool], ...] = (),
    ):
        self._records = records
        self._predicates = predicates

    def _extend(self, predicate: Callable[[InvocationRecord], bool]) -> "LogQuery":
        return LogQuery(self._records, self._predicates + (predicate,))

    # -- filters -----------------------------------------------------------

    def filter(self, predicate: Callable[[InvocationRecord], bool]) -> "LogQuery":
        return self._extend(predicate)

    def where(self, **equals: Any) -> "LogQuery":
        """Keep records whose fields equal the given values
        (``where(function="api", start_type=StartType.COLD)``)."""
        items = tuple(equals.items())
        return self._extend(
            lambda r: all(getattr(r, name) == value for name, value in items)
        )

    def cold(self) -> "LogQuery":
        return self._extend(lambda r: r.is_cold)

    def warm(self) -> "LogQuery":
        return self._extend(lambda r: not r.is_cold)

    def ok(self) -> "LogQuery":
        return self._extend(lambda r: r.ok)

    def failed(self) -> "LogQuery":
        return self._extend(lambda r: not r.ok)

    def with_status(self, *statuses: InvocationStatus | str) -> "LogQuery":
        """Keep records whose status is one of *statuses*."""
        wanted = frozenset(InvocationStatus(s) for s in statuses)
        return self._extend(lambda r: r.status in wanted)

    def billed(self) -> "LogQuery":
        """Keep records the platform charges for (everything but throttles)."""
        return self._extend(lambda r: r.billed)

    def between(
        self, start: float | None = None, end: float | None = None
    ) -> "LogQuery":
        """Keep records with ``start <= timestamp < end`` (virtual time)."""
        return self._extend(
            lambda r: (start is None or r.timestamp >= start)
            and (end is None or r.timestamp < end)
        )

    # -- terminals ---------------------------------------------------------

    def records(self) -> list[InvocationRecord]:
        return [
            r
            for r in self._records
            if all(predicate(r) for predicate in self._predicates)
        ]

    def count(self) -> int:
        return len(self.records())

    def status_counts(self) -> dict[str, int]:
        """Per-status record counts over the matching records."""
        counts: dict[str, int] = {}
        for record in self.records():
            counts[record.status.value] = counts.get(record.status.value, 0) + 1
        return counts

    def values(self, field_name: str) -> list[float]:
        return [float(getattr(r, field_name)) for r in self.records()]

    def aggregate(
        self, **aggs: str | Callable[[list[InvocationRecord]], float]
    ) -> dict[str, float]:
        """Compute named aggregates over the matching records."""
        matched = self.records()
        result = {}
        for name, spec in aggs.items():
            fn = spec if callable(spec) else _parse_aggregate(spec)
            result[name] = fn(matched)
        return result

    def group_by(
        self, key: str | Callable[[InvocationRecord], Any]
    ) -> "GroupedLogQuery":
        """Partition matching records by a field name or key function."""
        fn = key if callable(key) else (lambda r, _name=key: getattr(r, _name))
        groups: dict[Any, list[InvocationRecord]] = {}
        for record in self.records():
            groups.setdefault(fn(record), []).append(record)
        return GroupedLogQuery(groups)


class GroupedLogQuery:
    """The result of :meth:`LogQuery.group_by`: per-group aggregation."""

    def __init__(self, groups: dict[Any, list[InvocationRecord]]):
        self.groups = groups

    def aggregate(
        self, **aggs: str | Callable[[list[InvocationRecord]], float]
    ) -> dict[Any, dict[str, float]]:
        result = {}
        for key in sorted(self.groups, key=str):
            query = LogQuery(self.groups[key])
            result[key] = query.aggregate(**aggs)
        return result

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[Any]:
        return iter(sorted(self.groups, key=str))


@dataclass
class ExecutionLog:
    """Append-only store of invocation records with analysis helpers."""

    records: list[InvocationRecord] = field(default_factory=list)

    def append(self, record: InvocationRecord) -> None:
        self.records.append(record)

    def query(self) -> LogQuery:
        """Start a log-insights-style query over the stored records."""
        return LogQuery(self.records)

    def write_jsonl(self, path: Path | str) -> Path:
        """Persist the log as one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record.to_dict()) + "\n")
        return path

    @classmethod
    def load_jsonl(cls, path: Path | str) -> "ExecutionLog":
        """Reconstruct a log saved by :meth:`write_jsonl`."""
        log = cls()
        for index, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines()
        ):
            line = line.strip()
            if not line:
                continue
            try:
                log.append(InvocationRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(f"line {index + 1}: bad record: {exc}") from exc
        return log

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[InvocationRecord]:
        return iter(self.records)

    def for_function(self, name: str) -> list[InvocationRecord]:
        return [r for r in self.records if r.function == name]

    def cold_starts(self, function: str | None = None) -> list[InvocationRecord]:
        return [
            r
            for r in self.records
            if r.is_cold and (function is None or r.function == function)
        ]

    def warm_starts(self, function: str | None = None) -> list[InvocationRecord]:
        return [
            r
            for r in self.records
            if r.start_type is StartType.WARM
            and (function is None or r.function == function)
        ]

    def status_counts(self, function: str | None = None) -> dict[str, int]:
        """Per-status counts, optionally scoped to one function."""
        query = self.query()
        if function is not None:
            query = query.where(function=function)
        return query.status_counts()

    def error_rate(self, function: str | None = None) -> float:
        """Fraction of invocations that did not end in ``SUCCESS``."""
        records = [
            r for r in self.records if function is None or r.function == function
        ]
        if not records:
            return 0.0
        return sum(1 for r in records if not r.ok) / len(records)

    def total_cost(self, function: str | None = None) -> float:
        return sum(
            r.cost_usd
            for r in self.records
            if function is None or r.function == function
        )

    def mean_e2e_s(self, function: str | None = None) -> float:
        values = [
            r.e2e_s
            for r in self.records
            if function is None or r.function == function
        ]
        return statistics.fmean(values) if values else 0.0

    def mean_billed_s(self, function: str | None = None) -> float:
        values = [
            r.billed_duration_s
            for r in self.records
            if function is None or r.function == function
        ]
        return statistics.fmean(values) if values else 0.0

    def peak_memory_mb(self, function: str | None = None) -> float:
        values = [
            r.peak_memory_mb
            for r in self.records
            if function is None or r.function == function
        ]
        return max(values) if values else 0.0
