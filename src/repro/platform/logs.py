"""Execution logs: the emulator's equivalent of AWS REPORT lines.

The paper "performs 100 invocations and collects metrics from the AWS
Lambda execution log", querying per-invocation start type, init duration,
billed duration, and memory.  :class:`InvocationRecord` carries exactly
those fields (plus the unbilled phase breakdown of Figure 1), and
:class:`ExecutionLog` provides the query surface the analysis layer uses.

:class:`LogQuery` is the CloudWatch-Logs-Insights-style half of that
surface: a lazy filter / group-by / aggregate builder over REPORT fields
(``log.query().cold().group_by("function").aggregate(p95="p95:e2e_s")``),
with aggregation specs named the way an Insights query names them
(``count``, ``sum:field``, ``mean:field``, ``min:``/``max:``,
``pNN:field``).  Logs also round-trip through JSON lines so a saved run
can be re-queried offline.

**Columnar storage.**  Fleet-scale replays log millions of invocations,
so :class:`ExecutionLog` no longer keeps a Python list of dataclass
instances.  It is an append-only *columnar* store: numeric fields live in
``array('d')``/``array('q')`` columns, low-cardinality strings (function,
instance id, error type) and enums are interned into small tables, and
regular ``req-NNNNNN`` request ids are packed as integers.  Appending a
record decomposes it into columns; reading materialises a fresh
:class:`InvocationRecord` view on demand, so the query/analysis surface
is unchanged while a stored record costs ~100 bytes instead of the ~500+
of a dict-backed dataclass.

With a ``spill_threshold``, the oldest rows stream to a JSON-lines spill
file once the in-memory portion grows past the threshold, which bounds
resident memory for arbitrarily long replays; iteration and queries
transparently stream spilled rows back.  Aggregation over a query is a
single streaming pass — matching records are materialised one at a time,
never held as a list (custom callable aggregates are the one exception).
"""

from __future__ import annotations

import json
import math
import os
import shutil
import statistics
from array import array
from itertools import repeat
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.errors import PlatformError

try:  # optional [perf] extra: only append_columns (vector engine) needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

import enum

__all__ = [
    "StartType",
    "InvocationStatus",
    "STATUSES",
    "InvocationRecord",
    "ExecutionLog",
    "LogQuery",
    "GroupedLogQuery",
    "iter_jsonl",
]


class StartType(str, enum.Enum):
    """Whether an invocation paid initialization (cold) or reused state."""

    COLD = "cold"
    WARM = "warm"
    #: The request was throttled before any instance work happened.
    THROTTLED = "throttled"


class InvocationStatus(str, enum.Enum):
    """How an invocation ended, Lambda-style.

    ``SUCCESS`` and ``ERROR`` are the application outcomes the paper's
    oracle distinguishes; the remaining four are *platform* outcomes:
    the configured ``timeout_s`` fired, the memory ceiling OOM-killed the
    instance, concurrency control rejected the request, or the instance
    crashed (injected via :mod:`repro.platform.faults`).  Timeouts and
    OOM kills are billed, throttles are not — matching AWS billing.
    """

    SUCCESS = "success"
    ERROR = "error"
    TIMEOUT = "timeout"
    OOM = "oom"
    THROTTLED = "throttled"
    CRASHED = "crashed"


#: Every status value, in a stable rendering order.
STATUSES = tuple(status.value for status in InvocationStatus)


@dataclass(frozen=True, slots=True)
class InvocationRecord:
    """One invocation's full accounting (an AWS REPORT line, enriched).

    Durations are virtual seconds.  ``instance_init_s`` and
    ``transmission_s`` are the unbilled platform phases of Figure 1 (zero
    on warm starts); ``init_duration_s`` is the billed Function
    Initialization; ``restore_duration_s`` replaces it under SnapStart.
    """

    request_id: str
    function: str
    start_type: StartType
    timestamp: float
    value: Any
    instance_id: str
    instance_init_s: float = 0.0
    transmission_s: float = 0.0
    init_duration_s: float = 0.0
    restore_duration_s: float = 0.0
    exec_duration_s: float = 0.0
    routing_s: float = 0.0
    billed_duration_s: float = 0.0
    memory_config_mb: int = 128
    peak_memory_mb: float = 0.0
    cost_usd: float = 0.0
    error_type: str | None = None
    status: InvocationStatus = InvocationStatus.SUCCESS

    def __post_init__(self) -> None:
        # Normalise: accept plain strings, and derive ERROR for records
        # built by pre-status code paths that only set ``error_type``.
        status = self.status
        if status.__class__ is not InvocationStatus:
            status = InvocationStatus(status)
        if status is InvocationStatus.SUCCESS and self.error_type is not None:
            status = InvocationStatus.ERROR
        object.__setattr__(self, "status", status)

    @property
    def e2e_s(self) -> float:
        """End-to-end latency: request to response (Section 2.2.2)."""
        return (
            self.routing_s
            + self.instance_init_s
            + self.transmission_s
            + self.init_duration_s
            + self.restore_duration_s
            + self.exec_duration_s
        )

    @property
    def is_cold(self) -> bool:
        return self.start_type is StartType.COLD

    @property
    def ok(self) -> bool:
        return self.status is InvocationStatus.SUCCESS

    @property
    def billed(self) -> bool:
        """Whether the platform charges for this invocation (throttles are
        the only unbilled outcome; timeouts and OOM kills are billed)."""
        return self.status is not InvocationStatus.THROTTLED

    def report_line(self) -> str:
        """Render like an AWS Lambda REPORT log line."""
        return (
            f"REPORT RequestId: {self.request_id}\t"
            f"Duration: {self.exec_duration_s * 1000:.2f} ms\t"
            f"Billed Duration: {self.billed_duration_s * 1000:.0f} ms\t"
            f"Memory Size: {self.memory_config_mb} MB\t"
            f"Max Memory Used: {self.peak_memory_mb:.0f} MB\t"
            + (
                f"Init Duration: {self.init_duration_s * 1000:.2f} ms"
                if self.is_cold
                else ""
            )
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict (``value`` must itself be JSON-serializable)."""
        return {
            "request_id": self.request_id,
            "function": self.function,
            "start_type": self.start_type.value,
            "timestamp": self.timestamp,
            "value": self.value,
            "instance_id": self.instance_id,
            "instance_init_s": self.instance_init_s,
            "transmission_s": self.transmission_s,
            "init_duration_s": self.init_duration_s,
            "restore_duration_s": self.restore_duration_s,
            "exec_duration_s": self.exec_duration_s,
            "routing_s": self.routing_s,
            "billed_duration_s": self.billed_duration_s,
            "memory_config_mb": self.memory_config_mb,
            "peak_memory_mb": self.peak_memory_mb,
            "cost_usd": self.cost_usd,
            "error_type": self.error_type,
            "status": self.status.value,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "InvocationRecord":
        known = {f.name for f in dataclass_fields(cls)}
        payload = {k: v for k, v in data.items() if k in known}
        payload["start_type"] = StartType(payload["start_type"])
        if "status" in payload:  # pre-status JSONL logs omit the field
            payload["status"] = InvocationStatus(payload["status"])
        return cls(**payload)


def iter_jsonl(path: Path | str) -> Iterator[InvocationRecord]:
    """Stream records from a JSON-lines log without loading it whole."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                yield InvocationRecord.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(f"line {index + 1}: bad record: {exc}") from exc


def _percentile(values: list[float], q: float) -> float:
    """Exact order statistic at rank ``floor(q * (n - 1))`` — the same
    convention :class:`~repro.obs.histogram.LogLinearHistogram` sketches."""
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[int(math.floor(q * (len(ordered) - 1)))]


def _parse_spec(spec: str) -> tuple[str, str | None, float]:
    """Split an Insights-style spec into ``(op, field, quantile)``."""
    if spec == "count":
        return "count", None, 0.0
    op, _, field_name = spec.partition(":")
    if not field_name:
        raise ValueError(
            f"aggregate spec {spec!r} needs a field, e.g. '{op or 'sum'}:cost_usd'"
        )
    if op in ("sum", "mean", "min", "max"):
        return op, field_name, 0.0
    if op.startswith("p"):
        try:
            q = float(op[1:]) / 100.0
        except ValueError:
            q = -1.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"bad percentile in aggregate spec {spec!r}")
        return "quantile", field_name, q
    raise ValueError(f"unknown aggregate op {op!r} (count, sum, mean, min, max, pNN)")


class LogQuery:
    """A lazy, chainable filter / group-by / aggregate over REPORT records.

    Chaining copies the predicate list, never the records, so building up
    a query is cheap; records are only touched by the terminal calls
    (:meth:`records`, :meth:`count`, :meth:`aggregate`).  Terminal calls
    other than :meth:`records`/:meth:`group_by` stream — matching records
    are materialised one at a time, so querying a spilled multi-million
    row log never re-loads it into memory.
    """

    def __init__(
        self,
        records: Iterable[InvocationRecord],
        predicates: tuple[Callable[[InvocationRecord], bool], ...] = (),
    ):
        self._records = records
        self._predicates = predicates

    def _extend(self, predicate: Callable[[InvocationRecord], bool]) -> "LogQuery":
        return LogQuery(self._records, self._predicates + (predicate,))

    def _matching(self) -> Iterator[InvocationRecord]:
        predicates = self._predicates
        if not predicates:
            yield from self._records
            return
        for record in self._records:
            if all(predicate(record) for predicate in predicates):
                yield record

    # -- filters -----------------------------------------------------------

    def filter(self, predicate: Callable[[InvocationRecord], bool]) -> "LogQuery":
        return self._extend(predicate)

    def where(self, **equals: Any) -> "LogQuery":
        """Keep records whose fields equal the given values
        (``where(function="api", start_type=StartType.COLD)``)."""
        items = tuple(equals.items())
        return self._extend(
            lambda r: all(getattr(r, name) == value for name, value in items)
        )

    def cold(self) -> "LogQuery":
        return self._extend(lambda r: r.is_cold)

    def warm(self) -> "LogQuery":
        return self._extend(lambda r: not r.is_cold)

    def ok(self) -> "LogQuery":
        return self._extend(lambda r: r.ok)

    def failed(self) -> "LogQuery":
        return self._extend(lambda r: not r.ok)

    def with_status(self, *statuses: InvocationStatus | str) -> "LogQuery":
        """Keep records whose status is one of *statuses*."""
        wanted = frozenset(InvocationStatus(s) for s in statuses)
        return self._extend(lambda r: r.status in wanted)

    def billed(self) -> "LogQuery":
        """Keep records the platform charges for (everything but throttles)."""
        return self._extend(lambda r: r.billed)

    def between(
        self, start: float | None = None, end: float | None = None
    ) -> "LogQuery":
        """Keep records with ``start <= timestamp < end`` (virtual time)."""
        return self._extend(
            lambda r: (start is None or r.timestamp >= start)
            and (end is None or r.timestamp < end)
        )

    # -- terminals ---------------------------------------------------------

    def records(self) -> list[InvocationRecord]:
        return list(self._matching())

    def count(self) -> int:
        return sum(1 for _ in self._matching())

    def status_counts(self) -> dict[str, int]:
        """Per-status record counts over the matching records."""
        counts: dict[str, int] = {}
        for record in self._matching():
            counts[record.status.value] = counts.get(record.status.value, 0) + 1
        return counts

    def values(self, field_name: str) -> list[float]:
        return [float(getattr(r, field_name)) for r in self._matching()]

    def aggregate(
        self, **aggs: str | Callable[[list[InvocationRecord]], float]
    ) -> dict[str, float]:
        """Compute named aggregates over the matching records.

        String specs stream in a single pass; percentile and mean specs
        buffer only the float column they need.  A *callable* spec is
        handed the full matching record list, so mixing one in falls back
        to materialising the match set.
        """
        if any(callable(spec) for spec in aggs.values()):
            matched = self.records()
            result = {}
            for name, spec in aggs.items():
                if callable(spec):
                    result[name] = spec(matched)
                else:
                    result[name] = LogQuery(matched).aggregate(**{name: spec})[
                        name
                    ]
            return result

        parsed = {name: _parse_spec(spec) for name, spec in aggs.items()}
        count = 0
        sums: dict[str, float] = {}
        mins: dict[str, float] = {}
        maxs: dict[str, float] = {}
        # mean/quantile need the full column (fmean precision, exact order
        # statistics) — floats only, never record objects.
        columns: dict[str, list[float]] = {
            field: []
            for op, field, _ in parsed.values()
            if op in ("mean", "quantile")
        }
        sum_fields = {f for op, f, _ in parsed.values() if op == "sum"}
        min_fields = {f for op, f, _ in parsed.values() if op == "min"}
        max_fields = {f for op, f, _ in parsed.values() if op == "max"}

        for record in self._matching():
            count += 1
            for field in sum_fields:
                sums[field] = sums.get(field, 0.0) + float(getattr(record, field))
            for field in min_fields:
                value = float(getattr(record, field))
                if field not in mins or value < mins[field]:
                    mins[field] = value
            for field in max_fields:
                value = float(getattr(record, field))
                if field not in maxs or value > maxs[field]:
                    maxs[field] = value
            for field, column in columns.items():
                column.append(float(getattr(record, field)))

        result = {}
        for name, (op, field, q) in parsed.items():
            if op == "count":
                result[name] = float(count)
            elif op == "sum":
                result[name] = sums.get(field, 0.0)
            elif op == "mean":
                column = columns[field]
                result[name] = statistics.fmean(column) if column else 0.0
            elif op == "min":
                result[name] = mins.get(field, 0.0)
            elif op == "max":
                result[name] = maxs.get(field, 0.0)
            else:
                result[name] = _percentile(columns[field], q)
        return result

    def group_by(
        self, key: str | Callable[[InvocationRecord], Any]
    ) -> "GroupedLogQuery":
        """Partition matching records by a field name or key function."""
        fn = key if callable(key) else (lambda r, _name=key: getattr(r, _name))
        groups: dict[Any, list[InvocationRecord]] = {}
        for record in self._matching():
            groups.setdefault(fn(record), []).append(record)
        return GroupedLogQuery(groups)


class GroupedLogQuery:
    """The result of :meth:`LogQuery.group_by`: per-group aggregation."""

    def __init__(self, groups: dict[Any, list[InvocationRecord]]):
        self.groups = groups

    def aggregate(
        self, **aggs: str | Callable[[list[InvocationRecord]], float]
    ) -> dict[Any, dict[str, float]]:
        result = {}
        for key in sorted(self.groups, key=str):
            query = LogQuery(self.groups[key])
            result[key] = query.aggregate(**aggs)
        return result

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[Any]:
        return iter(sorted(self.groups, key=str))


class _StringTable:
    """Append-only string interner: value -> small int and back."""

    __slots__ = ("values", "_index")

    def __init__(self) -> None:
        self.values: list[str] = []
        self._index: dict[str, int] = {}

    def intern(self, value: str) -> int:
        index = self._index.get(value)
        if index is None:
            index = self._index[value] = len(self.values)
            self.values.append(value)
        return index


#: Float-valued record fields stored as ``array('d')`` columns, in
#: :meth:`InvocationRecord.to_dict` order (the spill writer relies on it).
_FLOAT_COLUMNS = (
    "timestamp",
    "instance_init_s",
    "transmission_s",
    "init_duration_s",
    "restore_duration_s",
    "exec_duration_s",
    "routing_s",
    "billed_duration_s",
    "peak_memory_mb",
    "cost_usd",
)

_START_TYPES = tuple(StartType)
_START_TYPE_INDEX = {member: i for i, member in enumerate(_START_TYPES)}
_STATUS_TYPES = tuple(InvocationStatus)
_STATUS_INDEX = {member: i for i, member in enumerate(_STATUS_TYPES)}
_COLD_START = _START_TYPE_INDEX[StartType.COLD]
_THROTTLED_STATUS = _STATUS_INDEX[InvocationStatus.THROTTLED]

#: Pre-encoded JSON fragments for the enum-valued spill fields.
_START_JSON = tuple(json.dumps(member.value) for member in _START_TYPES)
_STATUS_JSON = tuple(json.dumps(member.value) for member in _STATUS_TYPES)

def _repr_column(column) -> list[str]:
    """``repr`` strings for one float column, deduplicated when repeats win.

    Spill columns repeat heavily (routing is constant, restore is all
    zero, billed durations quantize to the ms grid), so repr-per-distinct
    plus a C gather beats repr-per-row.  Distinctness is decided on the
    raw IEEE bit patterns — ``np.unique`` on the values would conflate
    ``-0.0`` with ``0.0`` and change the rendered sign.  High-cardinality
    columns (timestamps) fall through to the plain repr sweep.
    """
    if _np is not None and len(column) >= 256:
        bits = _np.frombuffer(column, dtype=_np.int64)
        unique, inverse = _np.unique(bits, return_inverse=True)
        if len(unique) <= len(column) // 2:
            table = _np.asarray(
                [repr(v) for v in unique.view(_np.float64).tolist()],
                dtype=object,
            )
            return table[inverse].tolist()
    return list(map(repr, column))


#: One spill line with every field pre-rendered; keys mirror json.dumps of
#: :meth:`ExecutionLog._row_dict` exactly (order, separators, spacing).
_ROW_TEMPLATE = (
    '{"request_id": %s, "function": %s, "start_type": %s, "timestamp": %s'
    ', "value": %s, "instance_id": %s, "instance_init_s": %s'
    ', "transmission_s": %s, "init_duration_s": %s, "restore_duration_s": %s'
    ', "exec_duration_s": %s, "routing_s": %s, "billed_duration_s": %s'
    ', "memory_config_mb": %d, "peak_memory_mb": %s, "cost_usd": %s'
    ', "error_type": %s, "status": %s}\n'
)


class ExecutionLog:
    """Append-only columnar store of invocation records with analysis helpers.

    The public surface is record-shaped — iteration yields
    :class:`InvocationRecord` views, :meth:`query` starts a LogQuery —
    but rows live in typed columns (see the module docstring), so a
    million-invocation replay holds ~100 MB instead of half a gigabyte.

    With ``spill_threshold`` set, every time the in-memory portion
    reaches the threshold it is appended to ``spill_path`` as JSON lines
    and dropped, bounding resident memory; iteration streams the spilled
    prefix back from disk.  Spilling requires JSON-serializable record
    values (the same contract as :meth:`write_jsonl`).
    """

    def __init__(
        self,
        records: Iterable[InvocationRecord] | None = None,
        *,
        spill_threshold: int | None = None,
        spill_path: Path | str | None = None,
    ):
        if spill_threshold is not None:
            if spill_threshold < 1:
                raise PlatformError(
                    f"spill threshold must be positive: {spill_threshold}"
                )
            if spill_path is None:
                raise PlatformError("spill_threshold requires a spill_path")
        self.spill_threshold = spill_threshold
        self.spill_path = Path(spill_path) if spill_path is not None else None
        self._spilled = 0
        # Incremental per-function accounting, maintained on every append so
        # reconciliation and status counts never re-materialise records.
        # Billing entries are [cost, invocations, cold_starts, throttles,
        # throttled_cost]; costs accumulate in append order, so the sums are
        # float-identical to a streaming pass over the records.
        self._billing: dict[str, list] = {}
        self._status_totals: dict[str, dict[str, int]] = {}
        # Per-function cold-start cost, accumulated in append order — the
        # float-exact target a cold-start AttributionStore recorded by the
        # same run must sum to (see cold_start_cost_usd).
        self._cold_costs: dict[str, float] = {}
        self._reset_columns()
        if records is not None:
            for record in records:
                self.append(record)

    def _reset_columns(self) -> None:
        self._floats = {name: array("d") for name in _FLOAT_COLUMNS}
        self._memory_config = array("q")
        self._start_types = array("b")
        self._statuses = array("b")
        self._functions = array("i")
        self._instances = array("i")
        self._errors = array("i")  # -1 encodes None
        self._request_nums = array("q")  # -1 encodes an irregular id
        self._request_odd: dict[int, str] = {}
        self._function_table = _StringTable()
        self._instance_table = _StringTable()
        self._error_table = _StringTable()
        self._values: list[Any] = []
        self._value_cache: dict[Any, Any] = {}
        self._size = 0

    # -- ingestion ---------------------------------------------------------

    def append(self, record: InvocationRecord) -> None:
        floats = self._floats
        for name in _FLOAT_COLUMNS:
            floats[name].append(getattr(record, name))
        self._memory_config.append(record.memory_config_mb)
        status_index = _STATUS_INDEX[record.status]
        start_index = _START_TYPE_INDEX[record.start_type]
        self._start_types.append(start_index)
        self._statuses.append(status_index)
        self._functions.append(self._function_table.intern(record.function))
        self._instances.append(self._instance_table.intern(record.instance_id))
        error = record.error_type
        self._errors.append(-1 if error is None else self._error_table.intern(error))

        request_id = record.request_id
        num = -1
        if request_id.startswith("req-"):
            tail = request_id[4:]
            if tail.isdigit():
                candidate = int(tail)
                if f"req-{candidate:06d}" == request_id:
                    num = candidate
        self._request_nums.append(num)
        if num < 0:
            self._request_odd[self._spilled + self._size] = request_id

        value = record.value
        if value is not None:
            # Dedup repeated payloads: hashable values directly, others by
            # canonical JSON.  Interned values are shared between views.
            try:
                value = self._value_cache.setdefault(value, value)
            except TypeError:
                try:
                    key = json.dumps(value, sort_keys=True)
                except (TypeError, ValueError):
                    pass
                else:
                    value = self._value_cache.setdefault(key, value)
        self._values.append(value)
        self._account(record.function, start_index, status_index, record.cost_usd)
        self._size += 1

        if self.spill_threshold is not None and self._size >= self.spill_threshold:
            self._spill()

    def append_row(
        self,
        request_num: int,
        function: str,
        start_index: int,
        status_index: int,
        timestamp: float,
        value: Any,
        instance_id: str,
        instance_init_s: float,
        transmission_s: float,
        init_duration_s: float,
        restore_duration_s: float,
        exec_duration_s: float,
        routing_s: float,
        billed_duration_s: float,
        memory_config_mb: int,
        peak_memory_mb: float,
        cost_usd: float,
        error_type: str | None,
        value_key: Any = None,
    ) -> None:
        """Append one invocation straight into the columns.

        The fast-path twin of :meth:`append` for callers (the replay
        kernel) that already hold the decomposed fields: no
        :class:`InvocationRecord` is built, no enum lookups run.
        ``request_num`` must be the regular ``req-NNNNNN`` integer;
        ``start_index``/``status_index`` are positions in the module
        tables (``_START_TYPE_INDEX`` / ``_STATUS_INDEX``).  The stored
        bytes — spill lines, materialised views, summaries — are
        identical to appending the equivalent record.  ``value_key``
        optionally carries a precomputed interning key (the hashable
        value itself, or its canonical JSON) so repeated payloads dedup
        without re-serialising.
        """
        floats = self._floats
        floats["timestamp"].append(timestamp)
        floats["instance_init_s"].append(instance_init_s)
        floats["transmission_s"].append(transmission_s)
        floats["init_duration_s"].append(init_duration_s)
        floats["restore_duration_s"].append(restore_duration_s)
        floats["exec_duration_s"].append(exec_duration_s)
        floats["routing_s"].append(routing_s)
        floats["billed_duration_s"].append(billed_duration_s)
        floats["peak_memory_mb"].append(peak_memory_mb)
        floats["cost_usd"].append(cost_usd)
        self._memory_config.append(memory_config_mb)
        self._start_types.append(start_index)
        self._statuses.append(status_index)
        self._functions.append(self._function_table.intern(function))
        self._instances.append(self._instance_table.intern(instance_id))
        self._errors.append(
            -1 if error_type is None else self._error_table.intern(error_type)
        )
        self._request_nums.append(request_num)
        if value is not None:
            if value_key is not None:
                value = self._value_cache.setdefault(value_key, value)
            else:
                try:
                    value = self._value_cache.setdefault(value, value)
                except TypeError:
                    try:
                        key = json.dumps(value, sort_keys=True)
                    except (TypeError, ValueError):
                        pass
                    else:
                        value = self._value_cache.setdefault(key, value)
        self._values.append(value)
        self._account(function, start_index, status_index, cost_usd)
        self._size += 1

        if self.spill_threshold is not None and self._size >= self.spill_threshold:
            self._spill()

    def append_rows(
        self,
        function: str,
        routing_s: float,
        request_nums: Iterable[int],
        start_indices: Iterable[int],
        status_indices: Iterable[int],
        timestamps: Iterable[float],
        values: Iterable[Any],
        value_keys: Iterable[Any],
        instance_ids: Iterable[str],
        instance_init_s: Iterable[float],
        transmission_s: Iterable[float],
        init_duration_s: Iterable[float],
        exec_duration_s: Iterable[float],
        billed_duration_s: Iterable[float],
        memory_config_mb: Iterable[int],
        peak_memory_mb: Iterable[float],
        cost_usd: Iterable[float],
        error_types: Iterable[str | None],
    ) -> None:
        """Append one function's batch of invocations column-at-a-time.

        The bulk twin of :meth:`append_row` for the vector replay engine:
        typed columns extend in C (one call per column instead of one per
        cell), string/value interning runs through list comprehensions,
        and the per-function accounting folds in a single tight loop —
        with costs still accumulated strictly in row order, so billing
        sums stay bit-identical to N sequential ``append_row`` calls.
        ``routing_s`` is constant across the batch (one function, one
        platform config); ``restore_duration_s`` is always zero on this
        path (SnapStart functions never reach the batch kernel).  Rows,
        materialised views, and fully flushed spill bytes are identical
        to the sequential path; only *when* a spill happens may shift to
        batch boundaries, which is why the vector engine refuses mid-run
        checkpoints (their spill watermarks assume row granularity).
        """
        request_nums = list(request_nums)
        n = len(request_nums)
        if n == 0:
            return
        floats = self._floats
        floats["timestamp"].extend(timestamps)
        floats["instance_init_s"].extend(instance_init_s)
        floats["transmission_s"].extend(transmission_s)
        floats["init_duration_s"].extend(init_duration_s)
        floats["restore_duration_s"].frombytes(bytes(8 * n))  # all 0.0
        floats["exec_duration_s"].extend(exec_duration_s)
        floats["routing_s"].extend(repeat(routing_s, n))
        floats["billed_duration_s"].extend(billed_duration_s)
        floats["peak_memory_mb"].extend(peak_memory_mb)
        cost_column = floats["cost_usd"]
        start = len(cost_column)
        cost_column.extend(cost_usd)
        self._memory_config.extend(memory_config_mb)
        starts_column = self._start_types
        statuses_column = self._statuses
        starts_column.extend(start_indices)
        statuses_column.extend(status_indices)
        self._functions.extend(repeat(self._function_table.intern(function), n))
        intern_instance = self._instance_table.intern
        self._instances.extend([intern_instance(i) for i in instance_ids])
        intern_error = self._error_table.intern
        self._errors.extend(
            [-1 if e is None else intern_error(e) for e in error_types]
        )
        self._request_nums.extend(request_nums)
        cache = self._value_cache
        self._values.extend(
            [
                v if v is None else cache.setdefault(k, v)
                for v, k in zip(values, value_keys)
            ]
        )

        entry = self._billing.get(function)
        if entry is None:
            entry = self._billing[function] = [0.0, 0, 0, 0, 0.0]
        counts = self._status_totals.get(function)
        if counts is None:
            counts = self._status_totals[function] = {}
        cold_cost = self._cold_costs.get(function, 0.0)
        billed_cost = entry[0]
        billed_count = entry[1]
        cold_count = entry[2]
        batch_cold_start = cold_count
        for i in range(start, start + n):
            status_index = statuses_column[i]
            if status_index != _THROTTLED_STATUS:
                cost = cost_column[i]
                billed_cost += cost
                billed_count += 1
                if starts_column[i] == _COLD_START:
                    cold_count += 1
                    cold_cost += cost
            else:
                entry[3] += 1
                if cost_column[i]:
                    entry[4] += cost_column[i]
            status = STATUSES[status_index]
            counts[status] = counts.get(status, 0) + 1
        entry[0] = billed_cost
        entry[1] = billed_count
        entry[2] = cold_count
        if cold_count != batch_cold_start or function in self._cold_costs:
            self._cold_costs[function] = cold_cost
        self._size += n

        if self.spill_threshold is not None and self._size >= self.spill_threshold:
            self._spill()

    def append_columns(
        self,
        function: str,
        routing_s: float,
        rid_start: int,
        *,
        start_types,
        status_indices,
        timestamps,
        instance_runs,
        value_runs,
        error_runs,
        instance_init_s,
        transmission_s,
        init_duration_s,
        exec_duration_s,
        billed_duration_s,
        memory_config_mb,
        peak_memory_mb,
        cost_usd,
    ) -> None:
        """Append one function's batch straight from numpy arrays.

        The zero-copy twin of :meth:`append_rows` for the vector chain
        path: float/int columns land via ``frombytes`` of the arrays'
        native little-endian buffers (typed columns and numpy share the
        same C layout), repetitive string-ish columns arrive run-length
        encoded — ``instance_runs`` as ``(instance_id, count)`` pairs,
        ``value_runs`` as ``(value, value_key, count)``, ``error_runs``
        as ``(error_type_or_None, count)`` — and the accounting folds
        run as seeded ``cumsum`` left-folds, bit-identical to the
        sequential loop.  Every request id is regular: row *i* is
        ``req-{rid_start + i}``.  No row may be throttled (the chain
        path never buffers throttles); ``restore_duration_s`` is zero as
        on :meth:`append_rows`.
        """
        n = int(len(timestamps))
        if n == 0:
            return
        floats = self._floats
        floats["timestamp"].frombytes(timestamps.tobytes())
        floats["instance_init_s"].frombytes(instance_init_s.tobytes())
        floats["transmission_s"].frombytes(transmission_s.tobytes())
        floats["init_duration_s"].frombytes(init_duration_s.tobytes())
        floats["restore_duration_s"].frombytes(bytes(8 * n))  # all 0.0
        floats["exec_duration_s"].frombytes(exec_duration_s.tobytes())
        floats["routing_s"].extend(repeat(routing_s, n))
        floats["billed_duration_s"].frombytes(billed_duration_s.tobytes())
        floats["peak_memory_mb"].frombytes(peak_memory_mb.tobytes())
        floats["cost_usd"].frombytes(cost_usd.tobytes())
        self._memory_config.frombytes(memory_config_mb.tobytes())
        self._start_types.frombytes(start_types.tobytes())
        self._statuses.frombytes(status_indices.tobytes())
        function_index = self._function_table.intern(function)
        self._functions.extend(array("i", (function_index,)) * n)
        instances_column = self._instances
        intern_instance = self._instance_table.intern
        for instance_id, count in instance_runs:
            index = intern_instance(instance_id)
            if count == 1:
                instances_column.append(index)
            else:
                instances_column.extend(array("i", (index,)) * count)
        errors_column = self._errors
        intern_error = self._error_table.intern
        for error, count in error_runs:
            index = -1 if error is None else intern_error(error)
            if count == 1:
                errors_column.append(index)
            else:
                errors_column.extend(array("i", (index,)) * count)
        self._request_nums.frombytes(
            _np.arange(rid_start, rid_start + n, dtype=_np.int64).tobytes()
        )
        cache = self._value_cache
        values_column = self._values
        for value, value_key, count in value_runs:
            if value is not None:
                value = cache.setdefault(value_key, value)
            if count == 1:
                values_column.append(value)
            else:
                values_column.extend([value] * count)

        entry = self._billing.get(function)
        if entry is None:
            entry = self._billing[function] = [0.0, 0, 0, 0, 0.0]
        counts = self._status_totals.get(function)
        if counts is None:
            counts = self._status_totals[function] = {}
        entry[0] = float(
            _np.cumsum(_np.concatenate(((entry[0],), cost_usd)))[-1]
        )
        entry[1] += n
        cold_mask = start_types == _COLD_START
        cold_n = int(cold_mask.sum())
        entry[2] += cold_n
        if cold_n:
            self._cold_costs[function] = float(
                _np.cumsum(
                    _np.concatenate(
                        (
                            (self._cold_costs.get(function, 0.0),),
                            cost_usd[cold_mask],
                        )
                    )
                )[-1]
            )
        unique, first, unique_counts = _np.unique(
            status_indices, return_index=True, return_counts=True
        )
        for position in _np.argsort(first, kind="stable").tolist():
            status = STATUSES[int(unique[position])]
            counts[status] = counts.get(status, 0) + int(
                unique_counts[position]
            )
        self._size += n

        if self.spill_threshold is not None and self._size >= self.spill_threshold:
            self._spill()

    def _account(
        self, function: str, start_index: int, status_index: int, cost: float
    ) -> None:
        entry = self._billing.get(function)
        if entry is None:
            entry = self._billing[function] = [0.0, 0, 0, 0, 0.0]
        if status_index != _THROTTLED_STATUS:
            entry[0] += cost
            entry[1] += 1
            if start_index == _COLD_START:
                entry[2] += 1
                self._cold_costs[function] = (
                    self._cold_costs.get(function, 0.0) + cost
                )
        else:
            entry[3] += 1
            if cost:
                entry[4] += cost
        counts = self._status_totals.get(function)
        if counts is None:
            counts = self._status_totals[function] = {}
        status = STATUSES[status_index]
        counts[status] = counts.get(status, 0) + 1

    def _row_dict(self, i: int) -> dict[str, Any]:
        """The :meth:`InvocationRecord.to_dict` payload, straight from the
        columns (identical key order, so spilled bytes match)."""
        floats = self._floats
        error_index = self._errors[i]
        return {
            "request_id": self._request_id(i),
            "function": self._function_table.values[self._functions[i]],
            "start_type": _START_TYPES[self._start_types[i]].value,
            "timestamp": floats["timestamp"][i],
            "value": self._values[i],
            "instance_id": self._instance_table.values[self._instances[i]],
            "instance_init_s": floats["instance_init_s"][i],
            "transmission_s": floats["transmission_s"][i],
            "init_duration_s": floats["init_duration_s"][i],
            "restore_duration_s": floats["restore_duration_s"][i],
            "exec_duration_s": floats["exec_duration_s"][i],
            "routing_s": floats["routing_s"][i],
            "billed_duration_s": floats["billed_duration_s"][i],
            "memory_config_mb": self._memory_config[i],
            "peak_memory_mb": floats["peak_memory_mb"][i],
            "cost_usd": floats["cost_usd"][i],
            "error_type": (
                None if error_index < 0 else self._error_table.values[error_index]
            ),
            "status": _STATUS_TYPES[self._statuses[i]].value,
        }

    def _request_id(self, i: int) -> str:
        num = self._request_nums[i]
        if num >= 0:
            return f"req-{num:06d}"
        return self._request_odd[self._spilled + i]

    def _materialize(self, i: int) -> InvocationRecord:
        floats = self._floats
        error_index = self._errors[i]
        return InvocationRecord(
            request_id=self._request_id(i),
            function=self._function_table.values[self._functions[i]],
            start_type=_START_TYPES[self._start_types[i]],
            timestamp=floats["timestamp"][i],
            value=self._values[i],
            instance_id=self._instance_table.values[self._instances[i]],
            instance_init_s=floats["instance_init_s"][i],
            transmission_s=floats["transmission_s"][i],
            init_duration_s=floats["init_duration_s"][i],
            restore_duration_s=floats["restore_duration_s"][i],
            exec_duration_s=floats["exec_duration_s"][i],
            routing_s=floats["routing_s"][i],
            billed_duration_s=floats["billed_duration_s"][i],
            memory_config_mb=self._memory_config[i],
            peak_memory_mb=floats["peak_memory_mb"][i],
            cost_usd=floats["cost_usd"][i],
            error_type=(
                None if error_index < 0 else self._error_table.values[error_index]
            ),
            status=_STATUS_TYPES[self._statuses[i]],
        )

    def _render_lines(self) -> list[str] | None:
        """Every in-memory row as its spill line (trailing newline included).

        Byte-identical to ``json.dumps(self._row_dict(i)) + "\\n"`` but an
        order of magnitude cheaper: strings encode once per interned table
        entry, enum fragments come from module tables, and the numeric
        fields go through ``repr`` — exactly what the C encoder emits for
        finite floats and ints.  Returns ``None`` when any float column
        holds a non-finite value or a record value refuses to serialize;
        callers then fall back to the general per-row encoder (which spells
        infinities the ``json`` way).  Soundness of the finiteness probe:
        IEEE addition propagates NaN, and an infinity only cancels into
        NaN, so a non-finite member always leaves ``sum()`` non-finite.
        A finite-but-overflowing sum merely wastes the fast path.
        """
        floats = self._floats
        for column in floats.values():
            total = sum(column)
            if total - total != 0.0:
                return None
        fn_json = [json.dumps(v) for v in self._function_table.values]
        inst_json = [json.dumps(v) for v in self._instance_table.values]
        err_json = [json.dumps(v) for v in self._error_table.values]
        value_json: dict[int, str] = {}
        values_col = []
        vappend = values_col.append
        vget = value_json.get
        for value in self._values:
            if value is None:
                vappend("null")
                continue
            key = id(value)
            vj = vget(key)
            if vj is None:
                try:
                    vj = value_json[key] = json.dumps(value)
                except (TypeError, ValueError):
                    return None
            vappend(vj)
        odd = self._request_odd
        spilled = self._spilled
        if not odd:
            # No odd ids anywhere in the log: every num is regular.
            rid_col = list(map('"req-%06d"'.__mod__, self._request_nums))
        else:
            rid_col = [
                f'"req-{num:06d}"' if num >= 0 else json.dumps(odd[spilled + i])
                for i, num in enumerate(self._request_nums)
            ]
        # Column-at-a-time assembly: one repr sweep per float column (the
        # dominant cost, unavoidable — it is what the C encoder would do
        # row-wise) and table lookups mapped per column, then a single
        # %-format per row over precomputed fragments.
        return list(
            map(
                _ROW_TEMPLATE.__mod__,
                zip(
                    rid_col,
                    map(fn_json.__getitem__, self._functions),
                    map(_START_JSON.__getitem__, self._start_types),
                    map(repr, floats["timestamp"]),
                    values_col,
                    map(inst_json.__getitem__, self._instances),
                    _repr_column(floats["instance_init_s"]),
                    _repr_column(floats["transmission_s"]),
                    _repr_column(floats["init_duration_s"]),
                    _repr_column(floats["restore_duration_s"]),
                    _repr_column(floats["exec_duration_s"]),
                    _repr_column(floats["routing_s"]),
                    _repr_column(floats["billed_duration_s"]),
                    self._memory_config,
                    _repr_column(floats["peak_memory_mb"]),
                    _repr_column(floats["cost_usd"]),
                    ("null" if e < 0 else err_json[e] for e in self._errors),
                    map(_STATUS_JSON.__getitem__, self._statuses),
                )
            )
        )

    def _render_payload(self) -> bytes:
        """Every in-memory row as one encoded UTF-8 chunk.

        Rendering to bytes once and writing through a binary handle skips
        the TextIOWrapper encode pass over the whole block — the bytes on
        disk are identical (UTF-8, ``\\n`` line ends on every platform).
        """
        lines = self._render_lines()
        if lines is None:
            lines = [
                json.dumps(self._row_dict(i)) + "\n" for i in range(self._size)
            ]
        return "".join(lines).encode("utf-8")

    def _spill(self) -> None:
        """Append every in-memory row to the spill file and drop them."""
        assert self.spill_path is not None
        self.spill_path.parent.mkdir(parents=True, exist_ok=True)
        with self.spill_path.open("ab") as handle:
            handle.write(self._render_payload())
        self._spilled += self._size
        self._reset_columns()

    def flush_spill(self) -> Path:
        """Push the in-memory tail to the spill file and return its path.

        Afterwards the spill file holds the complete log, byte-identical
        to :meth:`write_jsonl` — the fleet engine uses this to turn each
        shard's bounded-memory log into its on-disk per-function shard.
        """
        if self.spill_path is None:
            raise PlatformError("log has no spill_path to flush to")
        if self._size:
            self._spill()
        elif not self.spill_path.exists():
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            self.spill_path.touch()
        return self.spill_path

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        """Durable JSON-safe state for kill-and-resume replay.

        A spill-backed log pushes its in-memory tail to disk and fsyncs
        the spill first, so the recorded byte offset is a crash-safe
        watermark: on restore, anything past it (rows appended after this
        snapshot, including a torn final line) is truncated and
        re-executed.  A memory-only log snapshots just its incremental
        aggregates — row payloads are not retained across a resume, which
        the fleet path never needs (reconciliation and status counts run
        off the aggregates).
        """
        state: dict[str, Any] = {
            "rows": self._spilled + self._size,
            "billing": {k: list(v) for k, v in self._billing.items()},
            "status_totals": {
                k: dict(v) for k, v in self._status_totals.items()
            },
            "cold_costs": dict(self._cold_costs),
        }
        if self.spill_path is not None:
            self.flush_spill()
            with self.spill_path.open("rb") as handle:
                os.fsync(handle.fileno())
            state["offset"] = self.spill_path.stat().st_size
        else:
            state["offset"] = None
        return state

    def restore(self, state: dict) -> int:
        """Adopt a :meth:`snapshot`; returns re-executed row count.

        The log must be freshly constructed (same ``spill_path`` shape as
        the snapshotting run).  Spill rows past the snapshot watermark
        are truncated — they will be re-executed and re-appended.
        """
        if (state["offset"] is None) != (self.spill_path is None):
            raise PlatformError(
                "checkpointed log and resumed log disagree on spill backing"
            )
        reexecuted = 0
        if self.spill_path is not None:
            from repro.platform.checkpoint import truncate_spill

            reexecuted = truncate_spill(self.spill_path, state["offset"])
        self._reset_columns()
        self._spilled = int(state["rows"])
        self._billing = {
            name: [float(entry[0]), int(entry[1]), int(entry[2]),
                   int(entry[3]), float(entry[4])]
            for name, entry in state["billing"].items()
        }
        self._status_totals = {
            name: {status: int(count) for status, count in counts.items()}
            for name, counts in state["status_totals"].items()
        }
        self._cold_costs = {
            name: float(cost) for name, cost in state["cold_costs"].items()
        }
        return reexecuted

    # -- read side ---------------------------------------------------------

    @property
    def spilled(self) -> int:
        """How many rows live in the spill file rather than in memory."""
        return self._spilled

    @property
    def records(self) -> list[InvocationRecord]:
        """Every record, materialised as a list (compatibility surface;
        prefer iteration or :meth:`query` on large logs)."""
        return list(self)

    def query(self) -> LogQuery:
        """Start a log-insights-style query over the stored records."""
        return LogQuery(self)

    def write_jsonl(self, path: Path | str) -> Path:
        """Persist the log as one JSON object per line (streaming)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if self._spilled:
            assert self.spill_path is not None
            if path.resolve() == self.spill_path.resolve():
                raise PlatformError("cannot write_jsonl onto the live spill file")
            shutil.copyfile(self.spill_path, path)
            mode = "ab"
        else:
            mode = "wb"
        with path.open(mode) as handle:
            handle.write(self._render_payload())
        return path

    @classmethod
    def load_jsonl(cls, path: Path | str) -> "ExecutionLog":
        """Reconstruct a log saved by :meth:`write_jsonl`."""
        log = cls()
        for record in iter_jsonl(path):
            log.append(record)
        return log

    def __len__(self) -> int:
        return self._spilled + self._size

    def __iter__(self) -> Iterator[InvocationRecord]:
        if self._spilled:
            assert self.spill_path is not None
            yield from iter_jsonl(self.spill_path)
        for i in range(self._size):
            yield self._materialize(i)

    def for_function(self, name: str) -> list[InvocationRecord]:
        return [r for r in self if r.function == name]

    def cold_starts(self, function: str | None = None) -> list[InvocationRecord]:
        return [
            r
            for r in self
            if r.is_cold and (function is None or r.function == function)
        ]

    def warm_starts(self, function: str | None = None) -> list[InvocationRecord]:
        return [
            r
            for r in self
            if r.start_type is StartType.WARM
            and (function is None or r.function == function)
        ]

    def status_counts(self, function: str | None = None) -> dict[str, int]:
        """Per-status counts, optionally scoped to one function.

        Served from the incremental per-function totals — O(functions),
        never a pass over the records.
        """
        if function is not None:
            return dict(self._status_totals.get(function, {}))
        totals: dict[str, int] = {}
        for counts in self._status_totals.values():
            for status, count in counts.items():
                totals[status] = totals.get(status, 0) + count
        return totals

    def billing_summary(self) -> dict[str, tuple[float, int, int, int, float]]:
        """Per-function billing totals, maintained incrementally on append.

        Maps function name to ``(cost_usd, billed_invocations,
        cold_starts, throttles, throttled_cost_usd)``.  Costs accumulate
        in append order, so the float sums are bit-identical to a
        streaming pass over the records — the ledger reconciler relies
        on this to verify a multi-million row log in O(functions).
        """
        return {name: tuple(entry) for name, entry in self._billing.items()}

    def cold_start_cost_usd(self, function: str | None = None) -> float:
        """Billed cost of cold-start records, accumulated in append order.

        The attribution cross-check: for any one function, an
        :class:`~repro.obs.attribution.AttributionStore` recorded by the
        same run sums (:meth:`~repro.obs.attribution.AttributionStore.
        total_cost_usd`) to exactly this value, bit for bit — profiles
        and records are appended in the same order, and each profile's
        rows sum to its record's ``cost_usd`` bit-exactly.  With
        ``function=None`` the per-function totals are combined in sorted
        order (deterministic, but a different addition order than a
        single interleaved stream).
        """
        if function is not None:
            return self._cold_costs.get(function, 0.0)
        total = 0.0
        for name in sorted(self._cold_costs):
            total += self._cold_costs[name]
        return total

    def error_rate(self, function: str | None = None) -> float:
        """Fraction of invocations that did not end in ``SUCCESS``."""
        total = errors = 0
        for r in self:
            if function is None or r.function == function:
                total += 1
                if not r.ok:
                    errors += 1
        return errors / total if total else 0.0

    def total_cost(self, function: str | None = None) -> float:
        if function is None and not self._spilled:
            return sum(self._floats["cost_usd"])
        return sum(
            r.cost_usd for r in self if function is None or r.function == function
        )

    def mean_e2e_s(self, function: str | None = None) -> float:
        values = [
            r.e2e_s for r in self if function is None or r.function == function
        ]
        return statistics.fmean(values) if values else 0.0

    def mean_billed_s(self, function: str | None = None) -> float:
        values = [
            r.billed_duration_s
            for r in self
            if function is None or r.function == function
        ]
        return statistics.fmean(values) if values else 0.0

    def peak_memory_mb(self, function: str | None = None) -> float:
        values = [
            r.peak_memory_mb
            for r in self
            if function is None or r.function == function
        ]
        return max(values) if values else 0.0
