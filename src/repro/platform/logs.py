"""Execution logs: the emulator's equivalent of AWS REPORT lines.

The paper "performs 100 invocations and collects metrics from the AWS
Lambda execution log", querying per-invocation start type, init duration,
billed duration, and memory.  :class:`InvocationRecord` carries exactly
those fields (plus the unbilled phase breakdown of Figure 1), and
:class:`ExecutionLog` provides the query surface the analysis layer uses.
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["StartType", "InvocationRecord", "ExecutionLog"]


class StartType(str, enum.Enum):
    """Whether an invocation paid initialization (cold) or reused state."""

    COLD = "cold"
    WARM = "warm"


@dataclass(frozen=True)
class InvocationRecord:
    """One invocation's full accounting (an AWS REPORT line, enriched).

    Durations are virtual seconds.  ``instance_init_s`` and
    ``transmission_s`` are the unbilled platform phases of Figure 1 (zero
    on warm starts); ``init_duration_s`` is the billed Function
    Initialization; ``restore_duration_s`` replaces it under SnapStart.
    """

    request_id: str
    function: str
    start_type: StartType
    timestamp: float
    value: Any
    instance_id: str
    instance_init_s: float = 0.0
    transmission_s: float = 0.0
    init_duration_s: float = 0.0
    restore_duration_s: float = 0.0
    exec_duration_s: float = 0.0
    routing_s: float = 0.0
    billed_duration_s: float = 0.0
    memory_config_mb: int = 128
    peak_memory_mb: float = 0.0
    cost_usd: float = 0.0
    error_type: str | None = None

    @property
    def e2e_s(self) -> float:
        """End-to-end latency: request to response (Section 2.2.2)."""
        return (
            self.routing_s
            + self.instance_init_s
            + self.transmission_s
            + self.init_duration_s
            + self.restore_duration_s
            + self.exec_duration_s
        )

    @property
    def is_cold(self) -> bool:
        return self.start_type is StartType.COLD

    @property
    def ok(self) -> bool:
        return self.error_type is None

    def report_line(self) -> str:
        """Render like an AWS Lambda REPORT log line."""
        return (
            f"REPORT RequestId: {self.request_id}\t"
            f"Duration: {self.exec_duration_s * 1000:.2f} ms\t"
            f"Billed Duration: {self.billed_duration_s * 1000:.0f} ms\t"
            f"Memory Size: {self.memory_config_mb} MB\t"
            f"Max Memory Used: {self.peak_memory_mb:.0f} MB\t"
            + (
                f"Init Duration: {self.init_duration_s * 1000:.2f} ms"
                if self.is_cold
                else ""
            )
        )


@dataclass
class ExecutionLog:
    """Append-only store of invocation records with analysis helpers."""

    records: list[InvocationRecord] = field(default_factory=list)

    def append(self, record: InvocationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[InvocationRecord]:
        return iter(self.records)

    def for_function(self, name: str) -> list[InvocationRecord]:
        return [r for r in self.records if r.function == name]

    def cold_starts(self, function: str | None = None) -> list[InvocationRecord]:
        return [
            r
            for r in self.records
            if r.is_cold and (function is None or r.function == function)
        ]

    def warm_starts(self, function: str | None = None) -> list[InvocationRecord]:
        return [
            r
            for r in self.records
            if not r.is_cold and (function is None or r.function == function)
        ]

    def total_cost(self, function: str | None = None) -> float:
        return sum(
            r.cost_usd
            for r in self.records
            if function is None or r.function == function
        )

    def mean_e2e_s(self, function: str | None = None) -> float:
        values = [
            r.e2e_s
            for r in self.records
            if function is None or r.function == function
        ]
        return statistics.fmean(values) if values else 0.0

    def mean_billed_s(self, function: str | None = None) -> float:
        values = [
            r.billed_duration_s
            for r in self.records
            if function is None or r.function == function
        ]
        return statistics.fmean(values) if values else 0.0

    def peak_memory_mb(self, function: str | None = None) -> float:
        values = [
            r.peak_memory_mb
            for r in self.records
            if function is None or r.function == function
        ]
        return max(values) if values else 0.0
