"""Deterministic fault injection for the platform emulator.

Real serverless platforms fail in ways the happy-path lifecycle never
exercises: instances crash during initialization or mid-execution, and
request bursts hit concurrency throttles.  "Formal Foundations of
Serverless Computing" (Jangda et al.) shows that exactly these
retry-and-reuse semantics are where serverless programs go subtly wrong,
so a λ-trim deployment claim ("the fallback wrapper recovers") is only
credible if the emulator can produce those conditions on demand.

A :class:`FaultPlan` declares *rates* (per-decision probabilities, keyed
per function with a ``"*"`` default) and *outages* (virtual-time windows
during which every request is throttled).  A :class:`FaultInjector`
executes the plan with a single seeded RNG consumed in decision order —
no wall clock, no unseeded randomness — so a replay with the same seed
and the same arrival sequence reproduces the exact same faults, record
for record.

When the emulator has no injector configured the fault path is a single
``is None`` check per invocation: chaos costs nothing unless you ask for
it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import PlatformError

__all__ = ["FaultRates", "Outage", "FaultPlan", "FaultInjector", "ExecCrash"]

#: Per-function wildcard, mirroring :data:`repro.platform.slo.FLEET`.
ANY_FUNCTION = "*"


@dataclass(frozen=True)
class FaultRates:
    """Per-decision fault probabilities for one function (or the default).

    ``cold_start_crash`` kills the instance during Function Initialization
    (the init that ran is billed, the instance never becomes warm);
    ``exec_crash`` kills it mid-execution (the partial execution is
    billed); ``throttle`` rejects the request before any instance work
    (nothing is billed).
    """

    cold_start_crash: float = 0.0
    exec_crash: float = 0.0
    throttle: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cold_start_crash", "exec_crash", "throttle"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise PlatformError(f"fault rate {name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class Outage:
    """A virtual-time window during which every request is throttled.

    ``function`` scopes the outage; the default hits the whole fleet.
    """

    start_s: float
    end_s: float
    function: str = ANY_FUNCTION

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise PlatformError(
                f"outage window must have end > start: "
                f"[{self.start_s}, {self.end_s})"
            )

    def covers(self, function: str, now: float) -> bool:
        return (
            self.start_s <= now < self.end_s
            and self.function in (ANY_FUNCTION, function)
        )


@dataclass
class FaultPlan:
    """A declarative, seeded chaos schedule for one emulator run."""

    seed: int = 0
    default: FaultRates = field(default_factory=FaultRates)
    per_function: dict[str, FaultRates] = field(default_factory=dict)
    outages: tuple[Outage, ...] = ()

    def rates_for(self, function: str) -> FaultRates:
        return self.per_function.get(function, self.default)


@dataclass(frozen=True)
class ExecCrash:
    """An injected mid-execution instance crash.

    ``fraction`` is how far through the execution the instance died; the
    emulator bills the partial duration and discards the instance.
    """

    fraction: float


class FaultInjector:
    """Executes a :class:`FaultPlan` with one seeded RNG.

    Decisions are drawn in invocation order, so for a fixed plan and a
    fixed arrival sequence the outcome is bit-for-bit reproducible.  A
    rate of zero draws nothing, which keeps functions with no configured
    faults from perturbing the RNG stream of functions that have them.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.injected: dict[str, int] = {
            "throttle": 0, "cold_start_crash": 0, "exec_crash": 0,
        }

    def _count(self, kind: str) -> None:
        self.injected[kind] += 1

    def throttled(self, function: str, now: float) -> bool:
        """Should this request be rejected with a throttle?"""
        for outage in self.plan.outages:
            if outage.covers(function, now):
                self._count("throttle")
                return True
        rate = self.plan.rates_for(function).throttle
        if rate > 0.0 and self._rng.random() < rate:
            self._count("throttle")
            return True
        return False

    def cold_start_crash(self, function: str, now: float) -> bool:
        """Should this cold start die during Function Initialization?"""
        rate = self.plan.rates_for(function).cold_start_crash
        if rate > 0.0 and self._rng.random() < rate:
            self._count("cold_start_crash")
            return True
        return False

    def exec_crash(self, function: str, now: float) -> ExecCrash | None:
        """Should this execution die mid-flight (and how far in)?"""
        rate = self.plan.rates_for(function).exec_crash
        if rate > 0.0 and self._rng.random() < rate:
            self._count("exec_crash")
            return ExecCrash(fraction=0.1 + 0.8 * self._rng.random())
        return None
