"""Deterministic fault injection for the platform emulator.

Real serverless platforms fail in ways the happy-path lifecycle never
exercises: instances crash during initialization or mid-execution, and
request bursts hit concurrency throttles.  "Formal Foundations of
Serverless Computing" (Jangda et al.) shows that exactly these
retry-and-reuse semantics are where serverless programs go subtly wrong,
so a λ-trim deployment claim ("the fallback wrapper recovers") is only
credible if the emulator can produce those conditions on demand.

A :class:`FaultPlan` declares *rates* (per-decision probabilities, keyed
per function with a ``"*"`` default) and *outages* (virtual-time windows
during which every request is throttled).  A :class:`FaultInjector`
executes the plan with a single seeded RNG consumed in decision order —
no wall clock, no unseeded randomness — so a replay with the same seed
and the same arrival sequence reproduces the exact same faults, record
for record.

When the emulator has no injector configured the fault path is a single
``is None`` check per invocation: chaos costs nothing unless you ask for
it.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any

from repro.errors import PlatformError

__all__ = [
    "FaultRates",
    "Outage",
    "HostFault",
    "FaultPlan",
    "FaultInjector",
    "ExecCrash",
]

#: Per-function wildcard, mirroring :data:`repro.platform.slo.FLEET`.
ANY_FUNCTION = "*"


@dataclass(frozen=True)
class FaultRates:
    """Per-decision fault probabilities for one function (or the default).

    ``cold_start_crash`` kills the instance during Function Initialization
    (the init that ran is billed, the instance never becomes warm);
    ``exec_crash`` kills it mid-execution (the partial execution is
    billed); ``throttle`` rejects the request before any instance work
    (nothing is billed).
    """

    cold_start_crash: float = 0.0
    exec_crash: float = 0.0
    throttle: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cold_start_crash", "exec_crash", "throttle"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise PlatformError(f"fault rate {name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class Outage:
    """A virtual-time window during which every request is throttled.

    ``function`` scopes the outage; the default hits the whole fleet.
    """

    start_s: float
    end_s: float
    function: str = ANY_FUNCTION

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise PlatformError(
                f"outage window must have end > start: "
                f"[{self.start_s}, {self.end_s})"
            )

    def covers(self, function: str, now: float) -> bool:
        return (
            self.start_s <= now < self.end_s
            and self.function in (ANY_FUNCTION, function)
        )


#: Kinds of scheduled host loss (see :mod:`repro.platform.hosts`).
HOST_FAULT_KINDS = ("crash", "spot")


@dataclass(frozen=True)
class HostFault:
    """One scheduled host loss, executed by a ``HostPool``.

    ``kind="crash"`` kills the host abruptly at ``at_s`` (in-flight
    invocations die mid-execution); ``kind="spot"`` models a spot
    reclamation with a drain notice (warm instances are evicted,
    in-flight invocations finish).  ``host`` pins a host index; ``None``
    lets the pool pick one with its own seeded RNG at construction, so
    the choice never perturbs the :class:`FaultInjector` stream.
    """

    at_s: float
    kind: str = "crash"
    host: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in HOST_FAULT_KINDS:
            raise PlatformError(
                f"host fault kind must be one of {HOST_FAULT_KINDS}: {self.kind!r}"
            )
        if self.at_s < 0:
            raise PlatformError(f"host fault at_s must be >= 0: {self.at_s}")
        if self.host is not None and self.host < 0:
            raise PlatformError(f"host fault host index must be >= 0: {self.host}")


@dataclass
class FaultPlan:
    """A declarative, seeded chaos schedule for one emulator run."""

    seed: int = 0
    default: FaultRates = field(default_factory=FaultRates)
    per_function: dict[str, FaultRates] = field(default_factory=dict)
    outages: tuple[Outage, ...] = ()
    host_faults: tuple[HostFault, ...] = ()

    def rates_for(self, function: str) -> FaultRates:
        return self.per_function.get(function, self.default)

    # -- serialization --------------------------------------------------
    # Chaos configs should be reproducible artifacts, not code-only
    # constructions: ``to_json`` / ``from_json`` round-trip every field
    # (rates, outages, host faults) so ``repro replay --fault-plan FILE``
    # can load the exact schedule a previous run used.

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "default": _rates_to_dict(self.default),
            "per_function": {
                name: _rates_to_dict(rates)
                for name, rates in sorted(self.per_function.items())
            },
            "outages": [
                {"start_s": o.start_s, "end_s": o.end_s, "function": o.function}
                for o in self.outages
            ],
            "host_faults": [
                {"at_s": f.at_s, "kind": f.kind, "host": f.host}
                for f in self.host_faults
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Any) -> "FaultPlan":
        if not isinstance(data, dict):
            raise PlatformError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        known = {"seed", "default", "per_function", "outages", "host_faults"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise PlatformError(f"fault plan has unknown keys: {', '.join(unknown)}")
        try:
            return cls(
                seed=int(data.get("seed", 0)),
                default=_rates_from_dict(data.get("default", {})),
                per_function={
                    str(name): _rates_from_dict(rates)
                    for name, rates in dict(data.get("per_function", {})).items()
                },
                outages=tuple(
                    Outage(**dict(entry)) for entry in data.get("outages", [])
                ),
                host_faults=tuple(
                    HostFault(**dict(entry)) for entry in data.get("host_faults", [])
                ),
            )
        except PlatformError:
            raise
        except (TypeError, ValueError) as exc:
            raise PlatformError(f"malformed fault plan: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise PlatformError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def _rates_to_dict(rates: FaultRates) -> dict[str, float]:
    return {
        "cold_start_crash": rates.cold_start_crash,
        "exec_crash": rates.exec_crash,
        "throttle": rates.throttle,
    }


def _rates_from_dict(data: Any) -> FaultRates:
    if not isinstance(data, dict):
        raise PlatformError(
            f"fault rates must be a JSON object, got {type(data).__name__}"
        )
    return FaultRates(**{str(k): v for k, v in data.items()})


@dataclass(frozen=True)
class ExecCrash:
    """An injected mid-execution instance crash.

    ``fraction`` is how far through the execution the instance died; the
    emulator bills the partial duration and discards the instance.
    """

    fraction: float


class FaultInjector:
    """Executes a :class:`FaultPlan` with one seeded RNG.

    Decisions are drawn in invocation order, so for a fixed plan and a
    fixed arrival sequence the outcome is bit-for-bit reproducible.  A
    rate of zero draws nothing, which keeps functions with no configured
    faults from perturbing the RNG stream of functions that have them.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.injected: dict[str, int] = {
            "throttle": 0, "cold_start_crash": 0, "exec_crash": 0,
        }

    def _count(self, kind: str) -> None:
        self.injected[kind] += 1

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe RNG position + injection counters."""
        from repro.platform.checkpoint import rng_state_to_json

        return {
            "rng": rng_state_to_json(self._rng.getstate()),
            "injected": dict(self.injected),
        }

    def restore(self, state: dict) -> None:
        from repro.platform.checkpoint import rng_state_from_json

        self._rng.setstate(rng_state_from_json(state["rng"]))
        self.injected = {k: int(v) for k, v in state["injected"].items()}

    def throttled(self, function: str, now: float) -> bool:
        """Should this request be rejected with a throttle?"""
        for outage in self.plan.outages:
            if outage.covers(function, now):
                self._count("throttle")
                return True
        rate = self.plan.rates_for(function).throttle
        if rate > 0.0 and self._rng.random() < rate:
            self._count("throttle")
            return True
        return False

    def cold_start_crash(self, function: str, now: float) -> bool:
        """Should this cold start die during Function Initialization?"""
        rate = self.plan.rates_for(function).cold_start_crash
        if rate > 0.0 and self._rng.random() < rate:
            self._count("cold_start_crash")
            return True
        return False

    def exec_crash(self, function: str, now: float) -> ExecCrash | None:
        """Should this execution die mid-flight (and how far in)?"""
        rate = self.plan.rates_for(function).exec_crash
        if rate > 0.0 and self._rng.random() < rate:
            self._count("exec_crash")
            return ExecCrash(fraction=0.1 + 0.8 * self._rng.random())
        return None
