"""The vector replay engine: batch emission over the template kernel.

:class:`~repro.platform.kernel.KernelReplayer` already collapses each
invocation to a handful of float additions, but it still pays the full
per-event toll — a ``_serve`` call chain, one ``append_row``, one
``observe_row``, one billing update — once per arrival.  At fleet scale
that per-event overhead *is* the replay time.  :class:`VectorReplayer`
pays it once per batch instead: it drives the same capture phase on the
scalar path, then switches to a tight loop that only makes the decisions
that genuinely depend on the previous invocation (the warm-pool MRU
stack + busy heap, the clock fold, fault-outage checks) and defers
everything else — logging, billing, telemetry — to bulk, column-at-a-
time flushes.  On the throttle-free path each row is just a *spec
index* into per-*j* numpy outcome tables (built array-at-a-time by
:meth:`VectorReplayer._extend_spec_cols`), gathered into full columns
at flush time and emitted through :meth:`ExecutionLog.append_columns`,
:meth:`TelemetrySink.observe_columns` (numpy-bucketed histograms via
``Histogram.observe_many``), and :meth:`FunctionBill.charge_block`;
runs that can throttle keep the row-tuple loop through
:meth:`ExecutionLog.append_rows` / :meth:`TelemetrySink.observe_rows`.

**Equivalence argument.**  Byte-identity with the reference engine holds
for the same reason the kernel's does — identical float operations in
identical order — plus two observations this module leans on:

1. *Shared drift sequences.*  Every synthesized instance of a template
   lives on one float-drift sequence: ``W[0]`` is the cold template's
   post-exec meter time and ``W[j]`` folds the warm tape onto
   ``W[j-1]`` with the meter's own addition order.  An instance about to
   serve its ``j+1``-th invocation has ``t == W[j]`` exactly, so its
   exec time ``W[j+1] - W[j]``, billed duration, cost, status ladder,
   and e2e are pure functions of ``j`` — computed once per *j* into an
   outcome table instead of once per invocation (the "array-at-a-time
   status/billing math").  The same holds for live/peak memory.
2. *Order-dependent sums stay sequential.*  The clock, the per-function
   billing sums, the telemetry histogram ``_sum`` folds, and the log's
   accounting folds are sequential float additions whose order is
   observable; the bulk paths keep them as loops in serve order and
   vectorize only the order-free work (bucket indices, column extends,
   interning, counters).

**Fallback matrix.**  The batch path engages only when the whole run is
homogeneous: numpy importable, no checkpoint/resume, no host layer, no
CPU scaling, and no exec/cold-crash fault rates for the function
(outage- and rate-based *throttles* are fine — the injector is consulted
per serve, preserving RNG draw order and injection counters).  Retry
sessions use the inherited scalar timeline.  Timeout and OOM ladders are
batched (they are per-*j* outcomes, not events).  Anything else —
including a pool whose adopted instances fail the drift consistency
check — falls back to the scalar kernel mid-run, which is itself
byte-identical, so every export (merged logs, ledgers, telemetry, dead
letters, attribution profiles, checkpoints taken on the fallback path)
matches the reference engine at any worker count.  The parity suite in
``tests/platform/test_vector.py`` pins this down.
"""

from __future__ import annotations

import heapq

from repro.obs.attribution import attribute_cold_start
from repro.platform.faults import ANY_FUNCTION
from repro.platform.kernel import (
    _COLD,
    _INF,
    _S_ERROR,
    _S_OOM,
    _S_SUCCESS,
    _S_THROTTLED,
    _S_TIMEOUT,
    _STATUS_VALUES,
    _THROTTLED_START,
    _WARM,
    KernelReplayer,
    _Shadow,
)

try:  # numpy is an optional [perf] extra; without it we run the scalar kernel
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: True when the vector engine can actually engage its batch path.
HAVE_NUMPY = _np is not None

__all__ = ["VectorReplayer", "HAVE_NUMPY"]

#: Emit in bounded chunks so a single huge function keeps RSS flat; flush
#: boundaries are unobservable (sums continue their sequential folds).
_FLUSH_ROWS = 131072


class _DriftTables:
    """Per-template meter drift: state after the j-th serve of an instance.

    ``t[j]``/``live[j]``/``peak[j]`` are the meter fields any synthesized
    instance holds once it has served ``j + 1`` invocations (one cold
    plus ``j`` warm), computed with the meter's own sequential folds so
    the floats are bit-identical to per-instance replay.  Cached on
    ``_Entry.drift`` — the tables are pure template math, shared by every
    replayer that serves the same (bundle, event) pair.
    """

    __slots__ = ("t", "live", "peak")

    def __init__(self, cold) -> None:
        self.t = [cold.post_t]
        self.live = [cold.post_live]
        self.peak = [cold.post_peak]

    def extend(self, upto: int, warm) -> None:
        """Grow the tables so index *upto* is valid."""
        t = self.t
        if len(t) > upto:
            return
        live = self.live
        peak = self.peak
        times = warm.times
        mems = warm.mems
        has_mem = warm.has_mem
        while len(t) <= upto:
            # Same fold as _synth_warm: the tape as sequential additions.
            running = t[-1]
            for time_s in times:
                running += time_s
            t.append(running)
            if has_mem:
                lv = live[-1]
                pk = peak[-1]
                for mb in mems:
                    if mb:
                        lv += mb
                        if lv > pk:
                            pk = lv
                live.append(lv)
                peak.append(pk)
            else:
                live.append(live[-1])
                peak.append(peak[-1])

    def extend_array(self, upto: int, warm) -> None:
        """Vectorized :meth:`extend`: the same sequential folds as numpy
        prefix scans.

        ``cumsum`` is a strict left fold, so seeding it with the last
        table entry and tiling the tape reproduces the scalar loop's
        additions bit for bit; every L-th prefix is a table entry.  The
        memory fold includes the tape's zero entries the scalar loop
        skips — adding ``±0.0`` is a no-op here because the running
        live value can never be ``-0.0`` (it starts ``>= 0`` and
        ``a + (-a)`` rounds to ``+0.0``), and the running max only
        moves on strict increase.
        """
        t = self.t
        need = upto + 1 - len(t)
        if need <= 0:
            return
        times = warm.times
        count = len(times)
        if count:
            folded = _np.cumsum(
                _np.concatenate(
                    ((t[-1],), _np.tile(_np.asarray(times), need))
                )
            )
            t.extend(folded[count::count].tolist())
        else:
            t.extend([t[-1]] * need)
        live = self.live
        peak = self.peak
        if warm.has_mem and len(warm.mems):
            mems = _np.asarray(warm.mems)
            width = len(warm.mems)
            lv = _np.cumsum(
                _np.concatenate(((live[-1],), _np.tile(mems, need)))
            )
            pk = _np.maximum.accumulate(
                _np.concatenate(((peak[-1],), lv[1:]))
            )
            live.extend(lv[width::width].tolist())
            peak.extend(pk[width::width].tolist())
        else:
            live.extend([live[-1]] * need)
            peak.extend([peak[-1]] * need)


class VectorReplayer(KernelReplayer):
    """Kernel replayer with a batched, bulk-emitting serve loop.

    Drop-in for :class:`KernelReplayer` — same constructor, same
    :meth:`replay` contract, byte-identical outputs.  Only the retry-free
    serve loop is overridden; validation, binding, retries, checkpoints,
    and the finalization epilogue are inherited.
    """

    def _run_fast(
        self, arrivals, start_index, result, arrival_times, completion_times,
        checkpoint,
    ) -> None:
        if (
            _np is None
            or checkpoint is not None
            or start_index != 0
            or not self._batch_safe()
        ):
            super()._run_fast(
                arrivals, start_index, result, arrival_times,
                completion_times, checkpoint,
            )
            return
        # Capture phase on the scalar path: real cold + two verified warm
        # runs (plus anything served before the template is ready).
        entry = self._entry
        serve = self._serve
        n = len(arrivals)
        index = 0
        while index < n and not entry.ready:
            t = arrivals[index]
            status, start, completion, cost, _ = serve(t, False)
            result.attempts += 1
            if status == _S_THROTTLED:
                result.throttled += 1
            result.requests += 1
            if status == _S_SUCCESS:
                result.delivered += 1
            if start == _COLD:
                result.cold_starts += 1
            elif start == _WARM:
                result.warm_starts += 1
            result.total_cost += cost
            arrival_times.append(t)
            completion_times.append(completion)
            index += 1
        if index == n:
            return
        if not self._pool_consistent():
            super()._run_fast(
                arrivals, index, result, arrival_times, completion_times, None
            )
            return
        self._run_batch(arrivals, index, result, arrival_times, completion_times)

    # -- qualification ------------------------------------------------------

    def _batch_safe(self) -> bool:
        """Is the whole run homogeneous enough to batch?

        Hosts and CPU scaling thread per-invocation state through the
        serve; exec/cold-crash faults draw RNG inside it.  Throttle
        rates and outages are fine: the injector is consulted per serve
        on the batch path too, preserving draws and counters exactly.
        """
        if self._hosts is not None or self.emulator.cpu_scaling is not None:
            return False
        faults = self._faults
        if faults is not None:
            rates = faults.plan.rates_for(self._name)
            if rates.exec_crash != 0.0 or rates.cold_start_crash != 0.0:
                return False
        return True

    def _pool_consistent(self) -> bool:
        """Every live pool instance must sit exactly on the drift sequence.

        Capture-phase shadows always do (the meter performed the same
        folds the tables replay), but an instance adopted from direct
        ``emulator.invoke()`` calls may carry foreign history — e.g. a
        different event's charge tape.  Any mismatch sends the whole run
        to the scalar kernel.  Read-only: safe to call before adoption.
        """
        entry = self._entry
        drift = entry.drift
        if drift is None:
            drift = entry.drift = _DriftTables(entry.cold)
        warm = entry.warm
        t_table = drift.t
        live_table = drift.live
        peak_table = drift.peak

        def on_drift(invocations: int, t: float, live: float, peak: float) -> bool:
            if invocations < 1:
                return False
            drift.extend(invocations - 1, warm)
            k = invocations - 1
            return (
                t == t_table[k]
                and live == live_table[k]
                and peak == peak_table[k]
            )

        for _, _, shadow in self._busy:
            if not on_drift(shadow.invocations, shadow.t, shadow.live, shadow.peak):
                return False
        for _, shadow in self._idle:
            if shadow.alive and not on_drift(
                shadow.invocations, shadow.t, shadow.live, shadow.peak
            ):
                return False
        if not self._adopted:
            for instance in self._function.instances:
                if not instance.alive:
                    continue
                meter = instance.app.meter
                if not on_drift(
                    instance.invocations, meter.time_s, meter.live_mb,
                    meter.peak_mb,
                ):
                    return False
        return True

    # -- outcome tables -----------------------------------------------------

    def _cold_spec(self):
        """The cold-start outcome: every synthesized cold is identical up
        to its timestamp, request id, and instance id."""
        template = self._entry.cold
        name = self._name
        routing = self._routing
        instance_init_s, transmission_s = self._overhead
        init_s = template.init_s
        peak = template.post_peak
        memory_mb = self._memory_mb
        configured = memory_mb if memory_mb is not None else max(int(peak + 0.999), 1)
        clamped = self._clamp(configured)
        exec_s = template.exec1_s
        value = template.value
        value_key = template.value_key
        error_type = template.error_type
        status = _S_SUCCESS if error_type is None else _S_ERROR
        kill = False
        timeout_s = self._timeout_s
        timeout_at = (
            timeout_s if timeout_s is not None and exec_s > timeout_s else _INF
        )
        if timeout_at <= exec_s:
            exec_s = timeout_at
            value, value_key, error_type = None, None, "TimeoutError"
            status = _S_TIMEOUT
        elif memory_mb is not None and peak > clamped:
            value, value_key, error_type = None, None, "OutOfMemoryError"
            status = _S_OOM
            kill = True
        billed_duration = init_s + exec_s
        billed_s = self._billed(billed_duration)
        cost = self._cost(billed_duration, configured)
        # Same addition order as InvocationRecord.e2e_s.
        e2e = routing + instance_init_s + transmission_s + init_s + 0.0 + exec_s
        variant = (
            _COLD, status, value, value_key, instance_init_s, transmission_s,
            init_s, exec_s, billed_s, clamped, peak, cost, error_type,
        )
        vrow = (
            name, _STATUS_VALUES[status], status == _S_SUCCESS, True, True,
            False, e2e, cost, billed_s,
        )
        return exec_s, e2e, kill, variant, vrow, clamped, billed_s, cost

    def _extend_specs(self, upto: int) -> None:
        """Grow the warm outcome table so index *upto* is valid.

        Entry *j* is the full billed outcome of an instance's serve when
        it has already run *j* invocations: exec time off the drift
        sequence, the timeout/OOM ladder, billed duration, cost, e2e,
        and the prebuilt log/telemetry row constants.
        """
        entry = self._entry
        drift = entry.drift
        template = entry.warm
        drift.extend(upto, template)
        specs = self._warm_specs
        w = drift.t
        peaks = drift.peak
        name = self._name
        routing = self._routing
        memory_mb = self._memory_mb
        timeout_s = self._timeout_s
        j = len(specs)
        while j <= upto:
            exec_s = w[j] - w[j - 1]
            peak = peaks[j]
            configured = (
                memory_mb if memory_mb is not None else max(int(peak + 0.999), 1)
            )
            clamped = self._clamp(configured)
            value = template.value
            value_key = template.value_key
            error_type = template.error_type
            status = _S_SUCCESS if error_type is None else _S_ERROR
            kill = False
            timeout_at = (
                timeout_s
                if timeout_s is not None and exec_s > timeout_s
                else _INF
            )
            if timeout_at <= exec_s:
                exec_s = timeout_at
                value, value_key, error_type = None, None, "TimeoutError"
                status = _S_TIMEOUT
            elif memory_mb is not None and peak > clamped:
                value, value_key, error_type = None, None, "OutOfMemoryError"
                status = _S_OOM
                kill = True
            billed_duration = 0.0 + exec_s
            billed_s = self._billed(billed_duration)
            cost = self._cost(billed_duration, configured)
            e2e = routing + 0.0 + 0.0 + 0.0 + 0.0 + exec_s
            variant = (
                _WARM, status, value, value_key, 0.0, 0.0, 0.0, exec_s,
                billed_s, clamped, peak, cost, error_type,
            )
            vrow = (
                name, _STATUS_VALUES[status], status == _S_SUCCESS, True,
                False, True, e2e, cost, billed_s,
            )
            specs.append((exec_s, e2e, kill, variant, vrow))
            j += 1

    # -- columnar outcome tables --------------------------------------------

    def _init_spec_cols(self, cold_spec) -> None:
        """Seed the per-*j* outcome columns with the cold outcome at 0.

        Index 0 is the cold start and index ``j >= 1`` the warm outcome
        after *j* prior serves (a warm instance always has at least the
        cold behind it), so a per-row spec-index list gathers every log
        and telemetry column with one fancy-index per column at flush
        time.  ``value``/``value_key``/``error_type`` collapse to a tiny
        class table — which branch of the outcome ladder fired — that
        run-length encodes for :meth:`ExecutionLog.append_columns`.
        """
        (
            cold_exec, cold_e2e, cold_kill, variant, _vrow,
            cold_clamped, cold_billed_s, cold_cost,
        ) = cold_spec
        template = self._entry.warm
        self._sc_exec = [cold_exec]
        self._sc_e2e = [cold_e2e]
        self._sc_status = [variant[1]]
        self._sc_billed = [cold_billed_s]
        self._sc_cost = [cold_cost]
        self._sc_peak = [variant[10]]
        self._sc_clamped = [cold_clamped]
        self._sc_cls = [0]
        self._cls_values = [
            (variant[2], variant[3]),
            (template.value, template.value_key),
            (None, None),
            (None, None),
        ]
        self._cls_errors = [
            variant[12], template.error_type, "TimeoutError",
            "OutOfMemoryError",
        ]
        self._warm_specs = [(cold_exec, cold_e2e, cold_kill)]

    def _extend_spec_cols(self, upto: int) -> None:
        """Vectorized :meth:`_extend_specs` twin feeding the column table.

        The whole ladder runs array-at-a-time: exec times are exact
        ``diff``\\ s of the drift sequence, the timeout/OOM masks select
        statuses, and billed duration / cost go through the *scalar*
        pricing caches once per unique duration (numpy's ``round`` is
        not Python's correctly-rounded one) and scatter back.  Grows
        with doubling headroom so repeated one-past-the-end requests
        stay amortized-vectorized.
        """
        specs = self._warm_specs
        j0 = len(specs)
        upto = max(upto, 2 * j0)
        entry = self._entry
        drift = entry.drift
        template = entry.warm
        drift.extend_array(upto, template)
        w = _np.asarray(drift.t[j0 - 1 : upto + 1])
        exec_new = _np.diff(w)
        peaks = _np.asarray(drift.peak[j0 : upto + 1])
        count = upto + 1 - j0
        timeout_s = self._timeout_s
        memory_mb = self._memory_mb
        base_status = (
            _S_SUCCESS if template.error_type is None else _S_ERROR
        )
        status = _np.full(count, base_status, dtype=_np.int64)
        cls = _np.full(count, 1, dtype=_np.int64)
        kill = None
        tmask = None
        if timeout_s is not None:
            tmask = exec_new > timeout_s
            if tmask.any():
                exec_new = _np.where(tmask, timeout_s, exec_new)
                status[tmask] = _S_TIMEOUT
                cls[tmask] = 2
            else:
                tmask = None
        if memory_mb is not None:
            configured = memory_mb
            clamped_const = self._clamp(configured)
            omask = peaks > clamped_const
            if tmask is not None:
                omask &= ~tmask
            if omask.any():
                status[omask] = _S_OOM
                cls[omask] = 3
                kill = omask
            clamped = _np.full(count, clamped_const, dtype=_np.int64)
            du, dinv = _np.unique(exec_new, return_inverse=True)
            durations = du.tolist()
            billed = _np.asarray([self._billed(d) for d in durations])[dinv]
            cost = _np.asarray(
                [self._cost(d, configured) for d in durations]
            )[dinv]
        else:
            conf = _np.maximum((peaks + 0.999).astype(_np.int64), 1)
            cu, cinv = _np.unique(conf, return_inverse=True)
            clamped = _np.asarray(
                [self._clamp(c) for c in cu.tolist()], dtype=_np.int64
            )[cinv]
            du, dinv = _np.unique(exec_new, return_inverse=True)
            durations = du.tolist()
            billed = _np.asarray([self._billed(d) for d in durations])[dinv]
            width = len(cu)
            pu, pinv = _np.unique(dinv * width + cinv, return_inverse=True)
            cost = _np.asarray(
                [
                    self._cost(durations[p // width], int(cu[p % width]))
                    for p in pu.tolist()
                ]
            )[pinv]
        # Same addition order as the scalar spec builder:
        # ((((routing + 0.0) + 0.0) + 0.0) + 0.0) + exec_s.
        base = self._routing + 0.0 + 0.0 + 0.0 + 0.0
        e2e = base + exec_new
        execs = exec_new.tolist()
        e2es = e2e.tolist()
        kills = [False] * count if kill is None else kill.tolist()
        self._sc_exec += execs
        self._sc_e2e += e2es
        self._sc_status += status.tolist()
        self._sc_billed += billed.tolist()
        self._sc_cost += cost.tolist()
        self._sc_peak += peaks.tolist()
        self._sc_clamped += clamped.tolist()
        self._sc_cls += cls.tolist()
        specs.extend(zip(execs, e2es, kills))

    # -- the batch loop -----------------------------------------------------

    def _run_batch(
        self, arrivals, index, result, arrival_times, completion_times
    ) -> None:
        """Dispatch: the columnar loop unless throttles can fire.

        Rate throttles and outages must consult the fault injector per
        serve (RNG draw order and injection counters are observable), and
        throttled rows break the all-billed contract of the columnar
        emitters — so those runs take the row-tuple loop instead.  Both
        loops produce byte-identical exports.
        """
        faults = self._faults
        if faults is not None:
            plan = faults.plan
            name = self._name
            if plan.rates_for(name).throttle != 0.0 or any(
                outage.function in (ANY_FUNCTION, name)
                for outage in plan.outages
            ):
                self._run_batch_rows(
                    arrivals, index, result, arrival_times, completion_times
                )
                return
        self._run_batch_cols(
            arrivals, index, result, arrival_times, completion_times
        )

    def _run_batch_cols(
        self, arrivals, index, result, arrival_times, completion_times
    ) -> None:
        """The columnar serve loop: one spec index and timestamp per row.

        Identical pool/clock/id decisions to :meth:`_run_batch_rows`,
        but per-row emission shrinks to three list appends (spec index,
        timestamp, completion) plus run-length tracking of the serving
        instance; everything else gathers from the outcome columns at
        flush time.
        """
        entry = self._entry
        name = self._name
        function = self._function
        clock = self._clock
        keep_alive = self.emulator.keep_alive_s
        instance_seq = function.instance_seq
        instances = function.instances
        attribution = self._attribution
        pricing = self._pricing
        busy = self._busy
        idle = self._idle
        heappush = heapq.heappush
        heappop = heapq.heappop
        wrap = self._wrap
        kill_shadow = self._kill

        cold = entry.cold
        cold_spec = self._cold_spec()
        (
            cold_exec, cold_e2e, cold_kill, _variant, _vrow,
            cold_clamped, cold_billed_s, cold_cost,
        ) = cold_spec
        self._init_spec_cols(cold_spec)
        specs = self._warm_specs
        extend_specs = self._extend_spec_cols
        cold_init_s = cold.init_s
        cold_modules = cold.modules
        post_t = cold.post_t
        post_live = cold.post_live
        post_peak = cold.post_peak
        overhead_sum = self._overhead_sum

        now = clock.now()
        seq = self._seq.value
        ids = self._request_ids
        rid_base = ids.value
        adopted = self._adopted

        idx_list: list = []
        ts_list: list = []
        comps: list = []
        inst_runs: list = []
        run_iid = None
        run_count = 0
        cold_n = warm_n = 0
        flushed = index
        n = len(arrivals)
        spec_len = len(specs)

        if not adopted and index < n:
            # Inlined _acquire_warm adoption, hoisted out of the loop: it
            # can only trigger on the first arrival.
            adopted = True
            t0 = arrivals[index]
            for existing in instances:
                if existing.alive:
                    idle.append((t0, wrap(existing)))

        for i, t in enumerate(arrivals[index:] if index else arrivals, index):
            while busy and busy[0][0] <= t:
                freed = heappop(busy)
                idle.append((freed[0], freed[2]))
            shadow = None
            while idle:
                freed_at, candidate = idle[-1]
                if t - freed_at > keep_alive:
                    idle.clear()
                    break
                idle.pop()
                if candidate.alive:
                    shadow = candidate
                    break
            if shadow is not None:
                j = shadow.invocations
                shadow.invocations = j + 1
                if j >= spec_len:
                    extend_specs(j)
                    spec_len = len(specs)
                exec_eff, e2e, kill = specs[j]
                now += exec_eff
                idx_list.append(j)
                ts_list.append(now)
                comps.append(t + e2e)
                warm_n += 1
                iid = shadow.instance_id
                if kill:
                    kill_shadow(shadow)
                else:
                    heappush(busy, (t + e2e, seq, shadow))
                    seq += 1
            else:
                now += overhead_sum
                iid = f"{name}-i{next(instance_seq):05d}"
                now += cold_init_s
                now += cold_exec
                if attribution is not None:
                    rid = rid_base + len(idx_list)
                    attribution.record(
                        attribute_cold_start(
                            function=name,
                            request_id=f"req-{rid:06d}",
                            timestamp=now,
                            pricing=pricing,
                            memory_config_mb=cold_clamped,
                            modules=cold_modules,
                            billed_init_s=cold_init_s,
                            restore_s=0.0,
                            exec_s=cold_exec,
                            billed_duration_s=cold_billed_s,
                            cost_usd=cold_cost,
                            include_exec=True,
                        )
                    )
                idx_list.append(0)
                ts_list.append(now)
                comps.append(t + cold_e2e)
                cold_n += 1
                if not cold_kill:
                    shadow = _Shadow(
                        iid, t=post_t, live=post_live, peak=post_peak
                    )
                    shadow.invocations = 1
                    instances.append(shadow)
                    heappush(busy, (t + cold_e2e, seq, shadow))
                    seq += 1
            if iid is run_iid:
                run_count += 1
            else:
                if run_count:
                    inst_runs.append((run_iid, run_count))
                run_iid = iid
                run_count = 1
            if len(idx_list) >= _FLUSH_ROWS:
                inst_runs.append((run_iid, run_count))
                run_iid = None
                run_count = 0
                self._flush_cols(
                    result, idx_list, ts_list, comps, inst_runs,
                    arrivals[flushed:i + 1], rid_base, cold_n, warm_n,
                    arrival_times, completion_times,
                )
                rid_base += len(idx_list)
                ids.value = rid_base
                flushed = i + 1
                idx_list = []
                ts_list = []
                comps = []
                inst_runs = []
                cold_n = warm_n = 0

        if idx_list:
            inst_runs.append((run_iid, run_count))
            self._flush_cols(
                result, idx_list, ts_list, comps, inst_runs,
                arrivals[flushed:n], rid_base, cold_n, warm_n,
                arrival_times, completion_times,
            )
            rid_base += len(idx_list)
            ids.value = rid_base

        self._write_back(now, seq, adopted)

    def _flush_cols(
        self, result, idx_list, ts_list, comps, inst_runs, served, rid_base,
        cold_n, warm_n, arrival_times, completion_times,
    ) -> None:
        """Gather one chunk's columns from the outcome tables and bulk-emit.

        One fancy-index per column turns the per-row spec indices into
        full log/telemetry columns; the order-dependent float folds
        (billing, total cost, sketch sums) continue as seeded ``cumsum``
        left-folds inside the columnar emitters.
        """
        count = len(idx_list)
        idx = _np.asarray(idx_list, dtype=_np.intp)
        e2e = _np.asarray(self._sc_e2e)[idx]
        status = _np.asarray(self._sc_status, dtype=_np.int8)[idx]
        billed = _np.asarray(self._sc_billed)[idx]
        cost = _np.asarray(self._sc_cost)[idx]
        peak = _np.asarray(self._sc_peak)[idx]
        clamped = _np.asarray(self._sc_clamped, dtype=_np.int64)[idx]
        exec_col = _np.asarray(self._sc_exec)[idx]
        cold_mask = idx == 0
        starts = _np.where(
            cold_mask, _np.int8(_COLD), _np.int8(_WARM)
        ).astype(_np.int8)
        instance_init_s, transmission_s = self._overhead
        iinit = _np.where(cold_mask, instance_init_s, 0.0)
        trans = _np.where(cold_mask, transmission_s, 0.0)
        init = _np.where(cold_mask, self._entry.cold.init_s, 0.0)
        cls = _np.asarray(self._sc_cls, dtype=_np.int64)[idx]
        bounds = (_np.flatnonzero(cls[1:] != cls[:-1]) + 1).tolist()
        edges = [0, *bounds, count]
        cls_values = self._cls_values
        cls_errors = self._cls_errors
        value_runs = []
        error_runs = []
        for run in range(len(edges) - 1):
            a, b = edges[run], edges[run + 1]
            which = int(cls[a])
            value, value_key = cls_values[which]
            value_runs.append((value, value_key, b - a))
            error_runs.append((cls_errors[which], b - a))
        self._log.append_columns(
            self._name,
            self._routing,
            rid_base,
            start_types=starts,
            status_indices=status,
            timestamps=_np.asarray(ts_list),
            instance_runs=inst_runs,
            value_runs=value_runs,
            error_runs=error_runs,
            instance_init_s=iinit,
            transmission_s=trans,
            init_duration_s=init,
            exec_duration_s=exec_col,
            billed_duration_s=billed,
            memory_config_mb=clamped,
            peak_memory_mb=peak,
            cost_usd=cost,
        )
        bill = self._bill
        bill.charge_block(
            invocation_cost=float(
                _np.cumsum(
                    _np.concatenate(((bill.invocation_cost,), cost))
                )[-1]
            ),
            invocations=count,
            cold_starts=cold_n,
        )
        result.total_cost = float(
            _np.cumsum(_np.concatenate(((result.total_cost,), cost)))[-1]
        )
        result.attempts += count
        result.requests += count
        result.delivered += int((status == _S_SUCCESS).sum())
        result.cold_starts += cold_n
        result.warm_starts += warm_n
        sink = self._sink
        if sink is not None:
            sink.observe_columns(
                self._name,
                statuses=status,
                status_names=_STATUS_VALUES,
                ok=status == _S_SUCCESS,
                is_cold=cold_mask,
                e2e=e2e,
                cost=cost,
                billed_s=billed,
                arrivals=_np.asarray(served),
                rid_start=rid_base,
            )
        arrival_times.extend(served)
        completion_times.extend(comps)

    def _write_back(self, now: float, seq: int, adopted: bool) -> None:
        """Deferred state write-backs: the local folds are authoritative."""
        self._clock._now = now
        self._seq.value = seq
        self._adopted = adopted
        drift = self._entry.drift
        t_table = drift.t
        live_table = drift.live
        peak_table = drift.peak
        for _, _, shadow in self._busy:
            k = shadow.invocations - 1
            shadow.t = t_table[k]
            shadow.live = live_table[k]
            shadow.peak = peak_table[k]
        for _, shadow in self._idle:
            if shadow.alive:
                k = shadow.invocations - 1
                shadow.t = t_table[k]
                shadow.live = live_table[k]
                shadow.peak = peak_table[k]

    def _run_batch_rows(
        self, arrivals, index, result, arrival_times, completion_times
    ) -> None:
        entry = self._entry
        name = self._name
        function = self._function
        clock = self._clock
        routing = self._routing
        keep_alive = self.emulator.keep_alive_s
        instance_seq = function.instance_seq
        instances = function.instances
        attribution = self._attribution
        pricing = self._pricing
        busy = self._busy
        idle = self._idle
        heappush = heapq.heappush
        heappop = heapq.heappop
        wrap = self._wrap
        kill_shadow = self._kill

        self._warm_specs = specs = [None]
        extend_specs = self._extend_specs
        cold = entry.cold
        (
            cold_exec, cold_e2e, cold_kill, cold_variant, cold_vrow,
            cold_clamped, cold_billed_s, cold_cost,
        ) = self._cold_spec()
        cold_init_s = cold.init_s
        cold_modules = cold.modules
        post_t = cold.post_t
        post_live = cold.post_live
        post_peak = cold.post_peak
        overhead_sum = self._overhead_sum

        throttle_variant = (
            _THROTTLED_START, _S_THROTTLED, None, None, 0.0, 0.0, 0.0, 0.0,
            0.0, 128, 0.0, 0.0, "Throttled",
        )
        throttle_vrow = (
            name, _STATUS_VALUES[_S_THROTTLED], False, False, False, False,
            routing, 0.0, 0.0,
        )

        faults = self._faults
        check_throttle = None
        if faults is not None:
            plan = faults.plan
            # Zero throttle rate and no covering outage means throttled()
            # is a side-effect-free False: safe to skip entirely.
            if plan.rates_for(name).throttle != 0.0 or any(
                outage.function in (ANY_FUNCTION, name)
                for outage in plan.outages
            ):
                check_throttle = faults.throttled

        now = clock.now()
        seq = self._seq.value
        ids = self._request_ids
        rid_base = ids.value
        adopted = self._adopted

        variants: list = []
        vrows: list = []
        ts_list: list = []
        iid_list: list = []
        comps: list = []
        cold_n = warm_n = throttled_n = 0
        flushed = index
        n = len(arrivals)

        for i in range(index, n):
            t = arrivals[i]
            if check_throttle is not None and check_throttle(name, t):
                variants.append(throttle_variant)
                vrows.append(throttle_vrow)
                ts_list.append(now)
                iid_list.append("-")
                comps.append(t + routing)
                throttled_n += 1
            else:
                # Inlined _acquire_warm (host layer excluded by
                # qualification): MRU idle stack fed from the busy heap,
                # one stale top expiring the whole stack.
                if not adopted:
                    adopted = True
                    for existing in instances:
                        if existing.alive:
                            idle.append((t, wrap(existing)))
                while busy and busy[0][0] <= t:
                    freed = heappop(busy)
                    idle.append((freed[0], freed[2]))
                shadow = None
                while idle:
                    freed_at, candidate = idle[-1]
                    if t - freed_at > keep_alive:
                        idle.clear()
                        break
                    idle.pop()
                    if candidate.alive:
                        shadow = candidate
                        break
                if shadow is not None:
                    j = shadow.invocations
                    shadow.invocations = j + 1
                    if j >= len(specs):
                        extend_specs(j)
                    exec_eff, e2e, kill, variant, vrow = specs[j]
                    now += exec_eff
                    variants.append(variant)
                    vrows.append(vrow)
                    ts_list.append(now)
                    iid_list.append(shadow.instance_id)
                    comps.append(t + e2e)
                    warm_n += 1
                    if kill:
                        kill_shadow(shadow)
                    else:
                        heappush(busy, (t + e2e, seq, shadow))
                        seq += 1
                else:
                    now += overhead_sum
                    iid = f"{name}-i{next(instance_seq):05d}"
                    now += cold_init_s
                    now += cold_exec
                    if attribution is not None:
                        rid = rid_base + len(variants)
                        attribution.record(
                            attribute_cold_start(
                                function=name,
                                request_id=f"req-{rid:06d}",
                                timestamp=now,
                                pricing=pricing,
                                memory_config_mb=cold_clamped,
                                modules=cold_modules,
                                billed_init_s=cold_init_s,
                                restore_s=0.0,
                                exec_s=cold_exec,
                                billed_duration_s=cold_billed_s,
                                cost_usd=cold_cost,
                                include_exec=True,
                            )
                        )
                    variants.append(cold_variant)
                    vrows.append(cold_vrow)
                    ts_list.append(now)
                    iid_list.append(iid)
                    comps.append(t + cold_e2e)
                    cold_n += 1
                    if not cold_kill:
                        shadow = _Shadow(
                            iid, t=post_t, live=post_live, peak=post_peak
                        )
                        shadow.invocations = 1
                        instances.append(shadow)
                        heappush(busy, (t + cold_e2e, seq, shadow))
                        seq += 1
            if len(variants) >= _FLUSH_ROWS:
                self._flush(
                    result, variants, vrows, ts_list, iid_list, comps,
                    arrivals[flushed:i + 1], rid_base, cold_n, warm_n,
                    throttled_n, arrival_times, completion_times,
                )
                rid_base += len(variants)
                ids.value = rid_base
                flushed = i + 1
                variants = []
                vrows = []
                ts_list = []
                iid_list = []
                comps = []
                cold_n = warm_n = throttled_n = 0

        if variants:
            self._flush(
                result, variants, vrows, ts_list, iid_list, comps,
                arrivals[flushed:n], rid_base, cold_n, warm_n, throttled_n,
                arrival_times, completion_times,
            )
            rid_base += len(variants)
            ids.value = rid_base

        self._write_back(now, seq, adopted)

    def _flush(
        self, result, variants, vrows, ts_list, iid_list, comps, served,
        rid_base, cold_n, warm_n, throttled_n, arrival_times,
        completion_times,
    ) -> None:
        """Bulk-emit one chunk of serves in serve order."""
        count = len(variants)
        request_nums = list(range(rid_base, rid_base + count))
        cols = list(zip(*variants))
        self._log.append_rows(
            self._name,
            self._routing,
            request_nums,
            cols[0],   # start_indices
            cols[1],   # status_indices
            ts_list,
            cols[2],   # values
            cols[3],   # value_keys
            iid_list,
            cols[4],   # instance_init_s
            cols[5],   # transmission_s
            cols[6],   # init_duration_s
            cols[7],   # exec_duration_s
            cols[8],   # billed_duration_s
            cols[9],   # memory_config_mb
            cols[10],  # peak_memory_mb
            cols[11],  # cost_usd
            cols[12],  # error_types
        )
        # Billing and result sums continue their sequential folds in serve
        # order; only the int counters are segment aggregates.
        _, delivered = self._bill.charge_batch(
            cols[1],
            cols[11],
            success_status=_S_SUCCESS,
            throttled_status=_S_THROTTLED,
            cold_starts=cold_n,
            throttles=throttled_n,
        )
        total_cost = result.total_cost
        for status_index, cost in zip(cols[1], cols[11]):
            if status_index != _S_THROTTLED:
                total_cost += cost
        result.total_cost = total_cost
        result.attempts += count
        result.requests += count
        result.delivered += delivered
        result.throttled += throttled_n
        result.cold_starts += cold_n
        result.warm_starts += warm_n
        sink = self._sink
        if sink is not None:
            rows = [vrow + (rid,) for vrow, rid in zip(vrows, request_nums)]
            sink.observe_rows(rows, arrivals=served)
        arrival_times.extend(served)
        completion_times.extend(comps)
