"""The serverless platform emulator: deploy, invoke, bill (Section 2.1).

:class:`LambdaEmulator` implements the lifecycle the paper measures on AWS
Lambda:

* **cold start** — unbilled platform preparation (instance init + image
  transmission, pinned per-application to the Table 1 residual or derived
  from the image size), then billed Function Initialization (really
  importing the handler module under the instance meter), then billed
  Function Execution;
* **warm start** — an idle instance within its keep-alive window serves
  the request with only routing delay plus execution;
* **forced cold starts** — :meth:`update_function` discards warm
  instances, the paper's trick of editing the function description;
* **billing** — Eq. 1 with the provider's granularity, memory configured
  to the measured footprint (128 MB floor);
* **SnapStart** — cold starts restore from a checkpoint instead of
  re-initializing; restore time comes from the C/R simulator and restore/
  cache fees from :class:`~repro.pricing.snapstart.SnapStartPricing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bundle import AppBundle
from repro.checkpoint import Checkpoint, CriuSimulator
from repro.errors import FunctionNotFound, PlatformError
from repro.obs import get_recorder
from repro.obs.attribution import AttributionStore, attribute_cold_start
from repro.platform.billing import BillingLedger
from repro.platform.checkpoint import SerialCounter
from repro.platform.clock import VirtualClock
from repro.platform.faults import FaultInjector, FaultPlan
from repro.platform.hosts import HostConfig, HostPool
from repro.platform.instance import FunctionInstance
from repro.platform.logs import (
    ExecutionLog,
    InvocationRecord,
    InvocationStatus,
    StartType,
)
from repro.platform.telemetry import TelemetrySink
from repro.platform.tuning import CpuScalingModel
from repro.pricing import AwsLambdaPricing, PricingModel, SnapStartPricing
from repro.vm import aggregate_charges

__all__ = ["LambdaEmulator", "DeployedFunction"]

DEFAULT_KEEP_ALIVE_S = 15 * 60  # GCP-style; AWS allows up to ~45-60 min
DEFAULT_INSTANCE_INIT_S = 0.25
DEFAULT_TRANSMISSION_MB_PER_S = 170.0  # Figure 1: 742 MB in ~4.4 s
DEFAULT_ROUTING_S = 0.04


@dataclass
class DeployedFunction:
    """A function registered with the emulator."""

    name: str
    bundle: AppBundle
    memory_mb: int | None = None  # None = configure to measured footprint
    snapstart: bool = False
    #: Execution deadline; ``None`` disables the kill (the seed behaviour).
    #: Exceeding it yields a billed ``timeout`` record, like Lambda.
    timeout_s: float | None = None
    instances: list[FunctionInstance] = field(default_factory=list)
    snapshot: Checkpoint | None = None
    snapstart_enabled_at: float = 0.0
    generation: int = 0  # bumped by update_function to force cold starts
    #: Per-function instance-id sequence.  Ids depend only on this
    #: function's own cold-start history, so a fleet replay that shards
    #: functions across processes logs identical ids at any worker count.
    instance_seq: SerialCounter = field(
        default_factory=lambda: SerialCounter(1), repr=False
    )
    #: Deploy-time cache of ``(instance_init_s, transmission_s)``: the
    #: overhead is a pure function of the bundle manifest and the
    #: emulator's constants, so it is computed once per deploy (and
    #: invalidated on a bundle swap) instead of on every cold start.
    overhead_cache: tuple[float, float] | None = field(
        default=None, repr=False, compare=False
    )

    def warm_instance(self, now: float, keep_alive_s: float) -> FunctionInstance | None:
        for instance in self.instances:
            if instance.is_warm(now, keep_alive_s):
                return instance
        return None

    def discard_instances(self) -> None:
        for instance in self.instances:
            instance.shutdown()
        self.instances.clear()


class LambdaEmulator:
    """A deterministic, virtual-clock serverless platform."""

    def __init__(
        self,
        *,
        pricing: PricingModel | None = None,
        keep_alive_s: float = DEFAULT_KEEP_ALIVE_S,
        clock: VirtualClock | None = None,
        instance_init_s: float = DEFAULT_INSTANCE_INIT_S,
        transmission_mb_per_s: float = DEFAULT_TRANSMISSION_MB_PER_S,
        routing_s: float = DEFAULT_ROUTING_S,
        snapstart_pricing: SnapStartPricing | None = None,
        criu: CriuSimulator | None = None,
        cpu_scaling: CpuScalingModel | None = None,
        telemetry: TelemetrySink | None = None,
        faults: FaultInjector | FaultPlan | None = None,
        hosts: HostPool | HostConfig | None = None,
        log: ExecutionLog | None = None,
        record_detail: bool = True,
        attribution: AttributionStore | None = None,
    ):
        self.pricing = pricing if pricing is not None else AwsLambdaPricing()
        self.keep_alive_s = keep_alive_s
        self.clock = clock if clock is not None else VirtualClock()
        self.instance_init_s = instance_init_s
        self.transmission_mb_per_s = transmission_mb_per_s
        self.routing_s = routing_s
        self.snapstart_pricing = (
            snapstart_pricing if snapstart_pricing is not None else SnapStartPricing()
        )
        self.criu = criu if criu is not None else CriuSimulator()
        # Optional AWS-style CPU scaling: execution slows down below the
        # full-vCPU memory point (see repro.platform.tuning).  Off by
        # default so calibrated Table 1 durations are unchanged.
        self.cpu_scaling = cpu_scaling
        # Optional fleet-telemetry sink: every invocation record is also
        # folded into virtual-time windowed rollups (repro.platform.telemetry).
        self.telemetry = telemetry
        # Optional seeded chaos: throttles, cold-start and mid-execution
        # crashes (repro.platform.faults).  None keeps the happy path
        # fault-free at zero per-invocation cost.
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        self.faults = faults
        # Optional host layer (repro.platform.hosts): instances bin-pack
        # onto memory-constrained hosts, memory pressure evicts LRU warm
        # instances, and the fault plan's host_faults execute against the
        # pool.  A bare HostConfig is expanded here so the pool picks up
        # this emulator's telemetry sink and the plan's fault schedule.
        if isinstance(hosts, HostConfig):
            plan = self.faults.plan if self.faults is not None else None
            hosts = HostPool(
                hosts,
                host_faults=plan.host_faults if plan is not None else (),
                seed=plan.seed if plan is not None else 0,
                telemetry=self.telemetry,
            )
        elif hosts is not None and hosts.telemetry is None:
            hosts.telemetry = self.telemetry
        self.hosts = hosts
        # An injected log lets fleet replays choose columnar spill-to-disk
        # settings; the default is an unbounded in-memory columnar store.
        self.log = log if log is not None else ExecutionLog()
        self.ledger = BillingLedger()
        # With ``record_detail=False`` the per-invocation ``emulator.report``
        # obs event (a 14-key dict per record) is skipped even when a
        # recorder is active; counters still flow.
        self.record_detail = record_detail
        # Optional dollar attribution: with a store attached, every cold
        # start's init-phase charge stream is folded into a priced
        # ColdStartProfile (repro.obs.attribution).  None (the default)
        # keeps the capture entirely off the hot path.
        self.attribution = attribution
        # (module rows, billed_init_s, include_exec) stashed by
        # _cold_start for the record finisher to price.
        self._pending_cold: tuple | None = None
        self._functions: dict[str, DeployedFunction] = {}
        self._request_ids = SerialCounter(1)
        # Batched observability counters for the disabled-recorder fast
        # path: _emit_telemetry folds into these plain floats/dicts and
        # flush_obs() publishes the totals in one burst.
        self._obs_counts: dict[str, float] = {}
        self._obs_status: dict[str, int] = {}
        self._obs_peak_mb = 0.0
        self._obs_pending = 0

    # -- deployment ----------------------------------------------------------

    def deploy(
        self,
        bundle: AppBundle,
        *,
        name: str | None = None,
        memory_mb: int | None = None,
        snapstart: bool = False,
        timeout_s: float | None = None,
    ) -> DeployedFunction:
        """Register a bundle; ``memory_mb=None`` bills the measured peak.

        An explicit ``memory_mb`` is also the enforcement ceiling: an
        instance whose measured peak exceeds it is OOM-killed, the way an
        over-footprint debloated bundle dies on Lambda.  ``timeout_s``
        bounds each execution; both kills produce billed failure records.
        """
        function_name = name if name is not None else bundle.name
        if function_name in self._functions:
            raise PlatformError(f"function already deployed: {function_name}")
        if timeout_s is not None and timeout_s <= 0:
            raise PlatformError(f"timeout must be positive: {timeout_s}")
        function = DeployedFunction(
            name=function_name,
            bundle=bundle,
            memory_mb=memory_mb,
            snapstart=snapstart,
            timeout_s=timeout_s,
            snapstart_enabled_at=self.clock.now(),
        )
        self._functions[function_name] = function
        return function

    def function(self, name: str) -> DeployedFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise FunctionNotFound(f"no such function: {name}") from None

    def update_function(self, name: str, *, bundle: AppBundle | None = None) -> None:
        """Update function metadata, discarding warm instances.

        This is the paper's methodology for forcing 100 cold starts:
        "we update the function description field after each invocation".
        Passing *bundle* additionally swaps the deployed code — the
        mechanism :class:`~repro.core.fallback.FallbackManager` uses to
        "un-trim" a broken debloated function back to the original.
        """
        function = self.function(name)
        function.generation += 1
        if bundle is not None:
            function.bundle = bundle
            function.overhead_cache = None
        function.discard_instances()
        if self.hosts is not None:
            self.hosts.evacuate(name)
        if function.snapstart:
            function.snapshot = None  # a new version re-snapshots

    # -- invocation -----------------------------------------------------------

    def platform_overhead_s(self, function: DeployedFunction) -> tuple[float, float]:
        """(instance init, image transmission) — the unbilled phases.

        Cached on the function after the first call (invalidated when
        :meth:`update_function` swaps the bundle), so the per-cold-start
        cost is a tuple unpack.
        """
        cached = function.overhead_cache
        if cached is not None:
            return cached
        manifest = function.bundle.manifest
        if manifest.platform_overhead_s is not None:
            total = manifest.platform_overhead_s
            instance_init = min(self.instance_init_s, total / 2)
            overhead = (instance_init, total - instance_init)
        else:
            transmission = manifest.image_size_mb / self.transmission_mb_per_s
            overhead = (self.instance_init_s, transmission)
        function.overhead_cache = overhead
        return overhead

    def invoke(
        self,
        name: str,
        event: Any,
        context: Any = None,
        *,
        force_cold: bool = False,
    ) -> InvocationRecord:
        """Invoke a function; cold or warm depending on instance state."""
        function = self.function(name)
        if force_cold:
            self.update_function(name)

        now = self.clock.now()
        self.clock.advance(self.routing_s)

        hosts = self.hosts
        if hosts is not None:
            hosts.advance(now)
        served: FunctionInstance | None = None
        if self.faults is not None and self.faults.throttled(name, now):
            record = self._throttle_record(function)
        else:
            instance = function.warm_instance(now, self.keep_alive_s)
            if instance is not None:
                # Float zeros: warm records must carry the same field types
                # as cold ones, or exports that serialize the record object
                # directly (dead letters) differ from the columnar log.
                record = self._run(
                    function,
                    instance,
                    event,
                    context,
                    StartType.WARM,
                    0.0,
                    0.0,
                    0.0,
                    0.0,
                    arrival=now,
                )
                served = instance
            else:
                placement = (
                    hosts.admit(name, now, memory_mb=function.memory_mb)
                    if hosts is not None
                    else None
                )
                if hosts is not None and placement is None:
                    record = self._throttle_record(
                        function, error="CapacityExhausted"
                    )
                else:
                    record = self._cold_start(
                        function, event, context, arrival=now, placement=placement
                    )
                    if (
                        function.instances
                        and function.instances[-1].instance_id == record.instance_id
                    ):
                        served = function.instances[-1]
        if hosts is not None and served is not None:
            hosts.adjust(served.instance_id, record.peak_memory_mb, now)
            hosts.observe_footprint(name, record.peak_memory_mb)
            if served.alive:
                hosts.record_use(served.instance_id, now + record.e2e_s)
        self._record_invocation(record)
        return record

    def _record_invocation(
        self,
        record: InvocationRecord,
        *,
        arrival: float | None = None,
        emit_obs: bool = True,
    ) -> None:
        """Log, bill, and publish one finished invocation record."""
        if self.attribution is not None and record.start_type is StartType.COLD:
            pending = self._pending_cold
            self._pending_cold = None
            if pending is not None:
                modules, billed_init_s, include_exec = pending
                self.attribution.record(
                    attribute_cold_start(
                        function=record.function,
                        request_id=record.request_id,
                        timestamp=record.timestamp,
                        pricing=self.pricing,
                        memory_config_mb=record.memory_config_mb,
                        modules=modules,
                        billed_init_s=billed_init_s,
                        restore_s=record.restore_duration_s,
                        exec_s=record.exec_duration_s,
                        billed_duration_s=record.billed_duration_s,
                        cost_usd=record.cost_usd,
                        include_exec=include_exec,
                    )
                )
        self.log.append(record)
        if record.billed:
            self.ledger.charge_invocation(
                record.function, record.cost_usd, cold=record.is_cold
            )
        else:
            self.ledger.charge_throttle(record.function)
        if self.telemetry is not None:
            self.telemetry.observe(record, arrival=arrival)
        if emit_obs:
            self._emit_telemetry(record)

    def _throttle_record(
        self, function: DeployedFunction, *, error: str = "Throttled"
    ) -> InvocationRecord:
        """A rejected request: no instance work, nothing billed.

        ``error="CapacityExhausted"`` marks a host-pool capacity throttle
        (no host could take the instance); both flavours share the
        THROTTLED status, so retry policies treat them alike.
        """
        return InvocationRecord(
            request_id=f"req-{next(self._request_ids):06d}",
            function=function.name,
            start_type=StartType.THROTTLED,
            timestamp=self.clock.now(),
            value=None,
            instance_id="-",
            routing_s=self.routing_s,
            cost_usd=0.0,
            error_type=error,
            status=InvocationStatus.THROTTLED,
        )

    def _emit_telemetry(self, record: InvocationRecord) -> None:
        """Re-emit the REPORT accounting as structured observability data.

        With the null recorder active this takes the batched fast path:
        totals accumulate in plain dicts (no instrument dispatch, no
        per-record key strings) and :meth:`flush_obs` publishes them in
        one burst — worth ~15% of replay wall time at fleet scale.
        """
        recorder = get_recorder()
        if not recorder.enabled:
            counts = self._obs_counts
            counts["emulator.invocations"] = (
                counts.get("emulator.invocations", 0.0) + 1.0
            )
            start_type = record.start_type
            if start_type is not StartType.THROTTLED:
                name = (
                    "emulator.cold_starts"
                    if start_type is StartType.COLD
                    else "emulator.warm_starts"
                )
                counts[name] = counts.get(name, 0.0) + 1.0
            counts["emulator.billed_ms"] = (
                counts.get("emulator.billed_ms", 0.0)
                + record.billed_duration_s * 1000.0
            )
            counts["emulator.cost_usd"] = (
                counts.get("emulator.cost_usd", 0.0) + record.cost_usd
            )
            status = record.status
            if status is not InvocationStatus.SUCCESS:
                counts["emulator.errors"] = counts.get("emulator.errors", 0.0) + 1.0
                self._obs_status[status.value] = (
                    self._obs_status.get(status.value, 0) + 1
                )
            if record.peak_memory_mb > self._obs_peak_mb:
                self._obs_peak_mb = record.peak_memory_mb
            self._obs_pending += 1
            return

        # A recorder became active: publish anything batched while it was
        # off so counter totals never depend on when it was enabled.
        if self._obs_pending:
            self.flush_obs()
        recorder.counter_add("emulator.invocations")
        if record.start_type is not StartType.THROTTLED:
            recorder.counter_add(
                "emulator.cold_starts" if record.is_cold else "emulator.warm_starts"
            )
        recorder.counter_add("emulator.billed_ms", record.billed_duration_s * 1000.0)
        recorder.counter_add("emulator.cost_usd", record.cost_usd)
        if not record.ok:
            recorder.counter_add("emulator.errors")
            recorder.counter_add(f"emulator.status.{record.status.value}")
        recorder.gauge_max("emulator.peak_memory_mb", record.peak_memory_mb)
        if self.record_detail:
            recorder.event(
                "emulator.report",
                {
                    "request_id": record.request_id,
                    "function": record.function,
                    "start_type": record.start_type.value,
                    "instance_init_s": record.instance_init_s,
                    "transmission_s": record.transmission_s,
                    "init_duration_s": record.init_duration_s,
                    "restore_duration_s": record.restore_duration_s,
                    "exec_duration_s": record.exec_duration_s,
                    "billed_duration_s": record.billed_duration_s,
                    "memory_config_mb": record.memory_config_mb,
                    "peak_memory_mb": record.peak_memory_mb,
                    "cost_usd": record.cost_usd,
                    "error_type": record.error_type,
                    "status": record.status.value,
                },
            )

    def flush_obs(self) -> None:
        """Publish observability counters batched on the fast path.

        Cheap when nothing is pending; replayers call it once per run so
        counter totals match the per-invocation path exactly.
        """
        if not self._obs_pending:
            return
        recorder = get_recorder()
        for name, value in self._obs_counts.items():
            recorder.counter_add(name, value)
        for status, count in self._obs_status.items():
            recorder.counter_add(f"emulator.status.{status}", count)
        recorder.gauge_max("emulator.peak_memory_mb", self._obs_peak_mb)
        self._obs_counts = {}
        self._obs_status = {}
        self._obs_peak_mb = 0.0
        self._obs_pending = 0

    def _cold_start(
        self,
        function: DeployedFunction,
        event: Any,
        context: Any,
        *,
        arrival: float | None = None,
        placement=None,
    ) -> InvocationRecord:
        instance_init_s, transmission_s = self.platform_overhead_s(function)
        self.clock.advance(instance_init_s + transmission_s)

        instance = FunctionInstance(
            function.name,
            function.bundle,
            created_at=self.clock.now(),
            sequence=function.instance_seq,
        )
        init_s = instance.initialize()  # the real import happens here
        # Snapshot the init-phase charge stream before the handler runs:
        # invoke() appends exec-phase events to the same meter.
        init_modules = (
            aggregate_charges(instance.app.meter.events)
            if self.attribution is not None
            else None
        )

        restore_s = 0.0
        if function.snapstart:
            # Restore from the snapshot instead of paying initialization:
            # the measured init happens off the books (snapshot creation).
            if function.snapshot is None:
                function.snapshot = self.criu.checkpoint(
                    function.name,
                    memory_mb=instance.init_memory_mb,
                    image_size_mb=function.bundle.manifest.image_size_mb,
                    init_time_s=init_s,
                )
            restore_s = self.criu.restore_time_s(function.snapshot)
            restore_cost = self.snapstart_pricing.restore_cost(
                function.snapshot.size_mb
            )
            self.ledger.charge_snapstart_restore(function.name, restore_cost)
            self.clock.advance(restore_s)
            billed_init_s = 0.0
        else:
            self.clock.advance(init_s)
            billed_init_s = init_s

        if self.faults is not None and self.faults.cold_start_crash(
            function.name, self.clock.now()
        ):
            # The instance died during initialization: the init that ran is
            # billed (Lambda bills failed inits on managed runtimes), the
            # instance never becomes warm, and no execution happens.
            instance.shutdown()
            if placement is not None:
                self.hosts.cancel(placement)
            configured = self._configured_mb(function, instance)
            billed = billed_init_s
            if init_modules is not None:
                self._pending_cold = (init_modules, billed_init_s, False)
            return InvocationRecord(
                request_id=f"req-{next(self._request_ids):06d}",
                function=function.name,
                start_type=StartType.COLD,
                timestamp=self.clock.now(),
                value=None,
                instance_id=instance.instance_id,
                instance_init_s=instance_init_s,
                transmission_s=transmission_s,
                init_duration_s=billed_init_s,
                restore_duration_s=restore_s,
                routing_s=self.routing_s,
                billed_duration_s=self.pricing.billed_duration_s(billed),
                memory_config_mb=self.pricing.clamp_memory_mb(configured),
                peak_memory_mb=instance.peak_memory_mb,
                cost_usd=self.pricing.invocation_cost(billed, configured),
                error_type="InstanceCrash",
                status=InvocationStatus.CRASHED,
            )

        if init_modules is not None:
            self._pending_cold = (init_modules, billed_init_s, True)
        function.instances.append(instance)
        if placement is not None:
            self.hosts.bind(placement, instance, function.instances)
        return self._run(
            function,
            instance,
            event,
            context,
            StartType.COLD,
            instance_init_s,
            transmission_s,
            billed_init_s,
            restore_s,
            arrival=arrival,
        )

    def _configured_mb(
        self, function: DeployedFunction, instance: FunctionInstance
    ) -> int:
        """The billed memory configuration (measured footprint when unset)."""
        if function.memory_mb is not None:
            return function.memory_mb
        return max(int(instance.peak_memory_mb + 0.999), 1)

    def _run(
        self,
        function: DeployedFunction,
        instance: FunctionInstance,
        event: Any,
        context: Any,
        start_type: StartType,
        instance_init_s: float,
        transmission_s: float,
        billed_init_s: float,
        restore_s: float,
        *,
        arrival: float | None = None,
    ) -> InvocationRecord:
        output = instance.invoke(event, context, at=self.clock.now())

        configured = self._configured_mb(function, instance)
        clamped_mb = self.pricing.clamp_memory_mb(configured)
        exec_s = output.exec_time_s
        if self.cpu_scaling is not None:
            exec_s *= self.cpu_scaling.duration_factor(
                clamped_mb, instance.peak_memory_mb
            )

        # Failure semantics: whichever kill fires earliest wins.  An
        # injected instance crash dies ``fraction`` of the way through;
        # a scheduled crash of the serving *host* truncates the execution
        # at the crash instant (clamped into the exec window — a crash
        # landing in the routing/init phases kills at offset zero); the
        # configured timeout fires at ``timeout_s``; the memory ceiling
        # (only enforced for an explicit memory_mb) is observed at the
        # measured peak, i.e. end of execution.  Timeouts, OOM kills, and
        # crashes are all billed for the time that ran.  On ties the host
        # crash wins: the machine disappearing subsumes a process crash.
        value = output.value
        error_type = output.error_type
        status = (
            InvocationStatus.SUCCESS
            if output.error_type is None
            else InvocationStatus.ERROR
        )
        crash = (
            self.faults.exec_crash(function.name, self.clock.now())
            if self.faults is not None
            else None
        )
        crash_at = exec_s * crash.fraction if crash is not None else float("inf")
        host_at = float("inf")
        if self.hosts is not None and arrival is not None:
            host_crash = self.hosts.crash_time(instance.instance_id)
            if host_crash is not None:
                offset = host_crash - (
                    arrival
                    + self.routing_s
                    + instance_init_s
                    + transmission_s
                    + billed_init_s
                    + restore_s
                )
                host_at = offset if offset > 0.0 else 0.0
        kill_at = host_at if host_at <= crash_at else crash_at
        timeout_at = (
            function.timeout_s
            if function.timeout_s is not None and exec_s > function.timeout_s
            else float("inf")
        )
        if kill_at < timeout_at and kill_at <= exec_s:
            exec_s = kill_at
            host_killed = host_at <= crash_at
            value = None
            error_type = "HostCrash" if host_killed else "InstanceCrash"
            status = InvocationStatus.CRASHED
            self._kill_instance(function, instance)
            if host_killed:
                self.hosts.lost_in_flight(function.name, arrival)
        elif timeout_at <= exec_s:
            exec_s = timeout_at
            value, error_type = None, "TimeoutError"
            status = InvocationStatus.TIMEOUT
        elif function.memory_mb is not None and instance.peak_memory_mb > clamped_mb:
            value, error_type = None, "OutOfMemoryError"
            status = InvocationStatus.OOM
            self._kill_instance(function, instance)
        self.clock.advance(exec_s)

        billed_duration = billed_init_s + exec_s
        cost = self.pricing.invocation_cost(billed_duration, configured)

        return InvocationRecord(
            request_id=f"req-{next(self._request_ids):06d}",
            function=function.name,
            start_type=start_type,
            timestamp=self.clock.now(),
            value=value,
            instance_id=instance.instance_id,
            instance_init_s=instance_init_s,
            transmission_s=transmission_s,
            init_duration_s=billed_init_s,
            restore_duration_s=restore_s,
            exec_duration_s=exec_s,
            routing_s=self.routing_s,
            billed_duration_s=self.pricing.billed_duration_s(billed_duration),
            memory_config_mb=clamped_mb,
            peak_memory_mb=instance.peak_memory_mb,
            cost_usd=cost,
            error_type=error_type,
            status=status,
        )

    def _kill_instance(
        self, function: DeployedFunction, instance: FunctionInstance
    ) -> None:
        """Discard one instance (OOM kill or crash): it never serves again."""
        instance.shutdown()
        if instance in function.instances:
            function.instances.remove(instance)
        if self.hosts is not None:
            self.hosts.release(instance.instance_id)

    def deploy_with_fallback(
        self,
        trimmed: AppBundle,
        original: AppBundle,
        *,
        name: str | None = None,
    ):
        """Deploy a debloated bundle with its safety net (Section 5.4).

        The original function is deployed as an independent instance
        (``<name>--fallback``); the returned
        :class:`~repro.core.fallback.FallbackWrapper` invokes the trimmed
        function and, on an AttributeError-class failure, re-invokes the
        original and reports the failing input.
        """
        from repro.core.fallback import FallbackWrapper

        primary_name = name if name is not None else trimmed.name
        fallback_name = f"{primary_name}--fallback"
        self.deploy(trimmed, name=primary_name)
        self.deploy(original, name=fallback_name)
        return FallbackWrapper(
            primary=lambda event, context: self.invoke(primary_name, event, context),
            original=lambda event, context: self.invoke(fallback_name, event, context),
        )

    def deploy_managed(
        self,
        trimmed: AppBundle,
        original: AppBundle,
        *,
        name: str | None = None,
        breaker=None,
        memory_mb: int | None = None,
        timeout_s: float | None = None,
    ):
        """Deploy a debloated bundle behind a self-healing manager.

        Like :meth:`deploy_with_fallback`, but returns a
        :class:`~repro.core.fallback.FallbackManager`: trigger errors are
        served by the original *and* counted against a sliding-window
        circuit breaker that un-trims the primary once they pile up.
        """
        from repro.core.fallback import FallbackManager

        primary_name = name if name is not None else trimmed.name
        fallback_name = f"{primary_name}--fallback"
        self.deploy(
            trimmed, name=primary_name, memory_mb=memory_mb, timeout_s=timeout_s
        )
        self.deploy(original, name=fallback_name)
        return FallbackManager(
            self, primary_name, fallback_name, original, breaker=breaker
        )

    # -- SnapStart accounting ----------------------------------------------------

    def settle_snapstart_cache(self, name: str) -> float:
        """Charge cache storage from enablement (or last settle) to now."""
        function = self.function(name)
        if not function.snapstart or function.snapshot is None:
            return 0.0
        duration = self.clock.now() - function.snapstart_enabled_at
        cost = self.snapstart_pricing.cache_cost(function.snapshot.size_mb, duration)
        self.ledger.charge_snapstart_cache(name, cost)
        function.snapstart_enabled_at = self.clock.now()
        return cost
