"""Fleet-scale trace replay: sharded processes, deterministic merge.

The single-function :class:`~repro.platform.replay.TraceReplayer` drives
one arrival series through one emulator.  This module scales that to an
entire multi-function Azure-style fleet (millions of invocations) by
exploiting the independence already built into the platform model:

* warm-instance state, keep-alive, and instance ids are per-function;
* the fault injector draws from one seeded RNG *per emulator*, so a
  fresh emulator per function gives every function its own deterministic
  fault stream;
* request ids are per-emulator counters.

Each function is therefore replayed on its **own fresh emulator**, which
makes every per-function artifact — records, rollups, bills — a pure
function of ``(bundle, trace, seed)`` and utterly independent of which
process replayed it, in which order, next to which neighbours.  Shards
(whole functions, balanced by invocation count) run on a
``ProcessPoolExecutor``; the parent then merges deterministically:

* **telemetry** — per-function window rollups come back as dicts and the
  fleet-wide ``"*"`` windows are rebuilt by merging the per-function
  sketches in sorted-function order (mergeable histograms are exact
  under merge, so percentiles match a single-sink run).  The fleet
  ``concurrency_peak`` is the *sum* of per-function peaks — an upper
  bound on the true interleaved depth, which a sharded run cannot
  observe;
* **billing** — per-function bills are float-exact (each was summed in
  arrival order inside its worker) and the merged ledger lists them in
  sorted-function order;
* **logs** — workers stream per-function JSON-lines shards; the merged
  export is a k-way merge ordered by ``(timestamp, function, position)``.

Exports are byte-identical for the same seed at any worker count —
``workers=1`` runs the same per-function engine inline and is the serial
baseline the throughput benchmark compares against.  SLO rules are
evaluated once, on the merged windows, in the same order a live
:class:`~repro.platform.telemetry.TelemetrySink` finalizes them.

With ``checkpoint_dir`` set the fleet replay is **kill-and-resume
safe**: workers snapshot their engine state every ``checkpoint_every``
served attempts (see :mod:`repro.platform.checkpoint`), the parent
supervises the pool and automatically resumes shards whose worker dies
mid-replay, and a crashed *parent* can be resumed with ``resume=True``.
Because each function's checkpoint pins every RNG, counter, and running
float sum, the merged exports are byte-identical to an uninterrupted
same-seed run no matter where the kill landed — the only cost is
re-executing the invocations since the dead shard's last checkpoint.

Not supported here: fallback managers (their breaker couples functions
through shared mutable state, the one thing sharding forbids) — chaos
runs that need self-healing keep using ``TraceReplayer`` directly.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import resource
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.bundle import AppBundle
from repro.core.journal import atomic_write_bytes, atomic_write_lines
from repro.errors import PlatformError
from repro.obs import InMemoryRecorder, get_recorder, use_recorder
from repro.obs.attribution import AttributionStore
from repro.platform.billing import BillingLedger, FunctionBill
from repro.platform.checkpoint import ReplayCheckpoint, sweep_stale
from repro.platform.emulator import DEFAULT_KEEP_ALIVE_S, LambdaEmulator
from repro.platform.faults import FaultPlan
from repro.platform.hosts import HostConfig
from repro.platform.kernel import KernelReplayer, TemplateStore
from repro.platform.logs import ExecutionLog, InvocationRecord, iter_jsonl
from repro.platform.replay import TraceReplayer
from repro.platform.retry import DeadLetter, RetryPolicy
from repro.platform.slo import FLEET, SloPolicy, SloRule
from repro.platform.telemetry import FleetReport, TelemetrySink, WindowRollup
from repro.platform.vector import HAVE_NUMPY, VectorReplayer, _np
from repro.traces.fleet import FleetTrace

__all__ = [
    "FunctionReplayStats",
    "FleetReplayResult",
    "replay_fleet",
    "report_from_log",
]


@dataclass(frozen=True, slots=True)
class FunctionReplayStats:
    """One function's replay outcome, as reported by its shard worker."""

    function: str
    arrivals: int
    requests: int
    delivered: int
    dead_letters: int
    attempts: int
    retries: int
    throttled: int
    cold_starts: int
    warm_starts: int
    #: Total records logged (attempts, including retries and throttles).
    records: int
    #: Per-status record counts over the function's full log.
    status_counts: dict[str, int]
    cost_usd: float
    peak_concurrency: int


@dataclass
class FleetReplayResult:
    """The merged outcome of one fleet replay."""

    report: FleetReport
    ledger: BillingLedger
    stats: dict[str, FunctionReplayStats]
    workers: int
    wall_s: float
    #: Per-function JSON-lines log shards (empty without ``log_dir``).
    log_paths: dict[str, Path] = field(default_factory=dict)
    merged_log: Path | None = None
    #: Per-function cold-start profile spools (empty without
    #: ``profile_dir``) and their deterministic merge.
    profile_paths: dict[str, Path] = field(default_factory=dict)
    merged_profiles: Path | None = None
    #: Dead-letter JSONL export (``None`` unless ``dead_letters`` was
    #: passed) and per-function host-pool stats (``None`` without
    #: ``hosts``).
    dead_letters: Path | None = None
    host_stats: dict[str, dict[str, Any]] | None = None
    #: Shard executions that adopted on-disk checkpoint state (supervisor
    #: restarts plus ``resume=True`` adoptions) and the invocations that
    #: had to run twice because they landed past a dead worker's last
    #: checkpoint.  Both zero on an uninterrupted run.
    resumed_shards: int = 0
    reexecuted_invocations: int = 0
    #: Peak RSS (MB) of whichever process replayed each shard, in shard
    #: submission order — the pool workers, or this process itself on the
    #: inline ``workers=1`` path.  ``RUSAGE_CHILDREN`` in the parent only
    #: reflects reaped workers, so the benchmark's per-worker breakdown
    #: comes from here.  Informational only; never exported.
    worker_peak_rss_mb: list[float] = field(default_factory=list)

    @property
    def arrivals(self) -> int:
        return sum(s.arrivals for s in self.stats.values())

    @property
    def records(self) -> int:
        return sum(s.records for s in self.stats.values())

    @property
    def delivered(self) -> int:
        return sum(s.delivered for s in self.stats.values())

    @property
    def total_cost(self) -> float:
        return self.ledger.total

    @property
    def throughput(self) -> float:
        """Replayed arrivals per wall-clock second."""
        return self.arrivals / self.wall_s if self.wall_s > 0 else 0.0

    def status_counts(self) -> dict[str, int]:
        """Fleet-wide per-status record counts."""
        totals: dict[str, int] = {}
        for stats in self.stats.values():
            for status, count in stats.status_counts.items():
                totals[status] = totals.get(status, 0) + count
        return totals


def _replay_one(
    bundle: AppBundle,
    name: str,
    timestamps: tuple[float, ...],
    cfg: dict,
    store: TemplateStore | None = None,
) -> dict:
    """Replay one function on a fresh emulator; return picklable results."""
    # Cross-process obs: when the parent had a live recorder at
    # replay_fleet() time, each function replays under its own
    # InMemoryRecorder and ships the counter/gauge totals back for the
    # parent to fold in sorted-function order.  Spans and events stay in
    # the worker — they carry wall-clock times, which must never leak
    # into a deterministic merge.
    shard_recorder = InMemoryRecorder() if cfg.get("spool_obs") else None
    scope = (
        use_recorder(shard_recorder) if shard_recorder is not None else nullcontext()
    )
    with scope:
        payload = _replay_one_inner(bundle, name, timestamps, cfg, store)
    if shard_recorder is not None:
        registry = shard_recorder.registry
        payload["obs"] = {
            "counters": {c.name: c.value for c in registry.counters()},
            "gauges": {g.name: g.value for g in registry.gauges()},
        }
    return payload


def _count_rows(path: Path) -> int:
    """Rows in a JSONL file, counting a torn final line as one row."""
    data = path.read_bytes()
    rows = data.count(b"\n")
    if data and not data.endswith(b"\n"):
        rows += 1
    return rows


def _replay_one_inner(
    bundle: AppBundle,
    name: str,
    timestamps: tuple[float, ...],
    cfg: dict,
    store: TemplateStore | None = None,
) -> dict:
    checkpoint: ReplayCheckpoint | None = None
    resume_state: dict | None = None
    if cfg.get("checkpoint_dir") is not None:
        checkpoint = ReplayCheckpoint(
            Path(cfg["checkpoint_dir"]), name, every=cfg.get("checkpoint_every")
        )
    resuming = checkpoint is not None and bool(cfg.get("resume"))
    if resuming:
        done = checkpoint.load_done()
        if done is not None:
            # The function finished before the crash: its spill and
            # profile exports were durable before the done marker was
            # written, so the recorded payload is adopted wholesale
            # instead of replaying anything.
            checkpoint.clear()
            payload = dict(done)
            payload["stats"] = FunctionReplayStats(**payload["stats"])
            if payload.get("dead_letters"):
                # Re-canonicalize: the done file stores JSON with sorted
                # keys, but the export contract is ``DeadLetter.to_dict``
                # field order — byte-identical to an uninterrupted run.
                payload["dead_letters"] = [
                    DeadLetter(
                        function=item["function"],
                        arrival=float(item["arrival"]),
                        attempts=tuple(
                            InvocationRecord.from_dict(record)
                            for record in item["attempts"]
                        ),
                    ).to_dict()
                    for item in payload["dead_letters"]
                ]
            payload["resumed"] = True
            return payload
        resume_state = checkpoint.load()
    # Workers never build "*" rollups: the parent rebuilds the fleet
    # windows deterministically in _merge_report, so per-record fleet
    # tracking in the worker is pure waste.
    sink = TelemetrySink(
        window_s=cfg["window_s"], subbuckets=cfg["subbuckets"], track_fleet=False
    )
    log_path: Path | None = None
    reexecuted_orphan = 0
    if cfg["log_dir"] is not None:
        log_path = Path(cfg["log_dir"]) / f"{name}.jsonl"
        # On resume the spill is the journal being resumed: the engine
        # truncates it to the checkpoint watermark.  A spill with no
        # checkpoint means the worker died before its first snapshot —
        # every row it wrote is about to run again.
        if log_path.exists() and resume_state is None:
            if resuming:
                reexecuted_orphan = _count_rows(log_path)
            log_path.unlink()
        log = ExecutionLog(spill_threshold=cfg["spill_threshold"], spill_path=log_path)
    else:
        log = ExecutionLog()
    profile_path: Path | None = None
    attribution: AttributionStore | None = None
    if cfg.get("profile_dir") is not None:
        attribution = AttributionStore()
        profile_path = Path(cfg["profile_dir"]) / f"{name}.profiles.jsonl"
    emulator = LambdaEmulator(
        keep_alive_s=cfg["keep_alive_s"],
        telemetry=sink,
        faults=cfg["faults"],
        # Each function gets its own HostPool built from the shared
        # HostConfig: host state is per-function, like warm instances, so
        # placement decisions are a pure function of (trace, seed) and
        # byte-identity holds at any worker count.
        hosts=cfg.get("hosts"),
        log=log,
        record_detail=cfg["record_detail"],
        attribution=attribution,
    )
    function = emulator.deploy(bundle, name=name)
    engine = cfg.get("engine", "auto")
    use_kernel = False
    if engine != "reference":
        replayable = TemplateStore.key_for(function, cfg["event"], None)
        if replayable is not None:
            use_kernel = True
        elif engine in ("kernel", "vector"):
            raise PlatformError(
                f"engine={engine!r} cannot replay {name!r}: snapstart or a "
                "non-JSON event needs engine='reference'"
            )
    if use_kernel:
        # auto prefers the batch engine when numpy is importable; it
        # falls back to the scalar kernel loop per run when the workload
        # does not qualify, so exports are identical either way.
        if engine == "kernel" or not HAVE_NUMPY:
            engine_cls = KernelReplayer
        else:
            engine_cls = VectorReplayer
        result = engine_cls(emulator, store).replay(
            name,
            list(timestamps),
            cfg["event"],
            retry=cfg["retry"],
            checkpoint=checkpoint,
            resume_state=resume_state,
        )
        requests = result.requests
        dead_letters = result.dead_letters
        dead_letter_list = result.dead_letter_list
    else:
        result = TraceReplayer(emulator).replay(
            name,
            list(timestamps),
            cfg["event"],
            retry=cfg["retry"],
            checkpoint=checkpoint,
            resume_state=resume_state,
        )
        requests = len(result.requests)
        dead_letters = len(result.dead_letters)
        dead_letter_list = result.dead_letters
    if cfg["verify_ledger"]:
        emulator.ledger.reconcile(emulator.log)
    status_counts = emulator.log.status_counts()
    records = len(emulator.log)
    if log_path is not None:
        log.flush_spill()
    if attribution is not None and profile_path is not None:
        attribution.write_jsonl(profile_path)
    emulator.function(name).discard_instances()
    bill = emulator.ledger.bill_for(name)
    payload = {
        "function": name,
        "windows": [w.to_dict() for w in sink.rollups(name)],
        "bill": {
            "invocation_cost": bill.invocation_cost,
            "invocations": bill.invocations,
            "cold_starts": bill.cold_starts,
            "throttles": bill.throttles,
        },
        "stats": FunctionReplayStats(
            function=name,
            arrivals=result.arrivals,
            requests=requests,
            delivered=result.delivered,
            dead_letters=dead_letters,
            attempts=result.attempts,
            retries=result.retries,
            throttled=result.throttled,
            cold_starts=result.cold_starts,
            warm_starts=result.warm_starts,
            records=records,
            status_counts=status_counts,
            cost_usd=result.total_cost,
            peak_concurrency=result.peak_concurrency,
        ),
        "log_path": str(log_path) if log_path is not None else None,
        "profile_path": str(profile_path) if profile_path is not None else None,
        "hosts": (
            emulator.hosts.stats_dict() if emulator.hosts is not None else None
        ),
        "dead_letters": (
            [dl.to_dict() for dl in dead_letter_list]
            if cfg.get("dead_letters")
            else None
        ),
        "resumed": resume_state is not None,
        "reexecuted": result.reexecuted + reexecuted_orphan,
    }
    if checkpoint is not None:
        # Durable completion marker: written only after the spill and the
        # profile spool above, so a resume that finds it can trust every
        # export it names.  A crash between those writes and this one
        # leaves the mid-trace ckpt in place and the function resumes.
        done_payload = dict(payload)
        done_payload["stats"] = asdict(payload["stats"])
        checkpoint.write_done(done_payload)
    return payload


def _replay_shard(payload: dict) -> dict:
    """Worker entry point: replay every function in one shard, in order.

    One :class:`~repro.platform.kernel.TemplateStore` spans the shard:
    every function replays the same ``(bundle, event)`` pair, so the
    capture cost — one real cold start plus two real warm invocations —
    is paid once per shard, not once per function.  The store is scoped
    here, never module-global, so a rebuilt bundle at the same path can
    never be served stale templates.

    ``worker_peak_rss_mb`` is this process's own ``ru_maxrss`` sampled
    *after* the shard replayed — ``RUSAGE_CHILDREN`` in the parent only
    folds a worker in once it is reaped at pool shutdown, so per-worker
    peaks must ride back with the results.  On the inline ``workers=1``
    path the "worker" is the caller's process; the value is still the
    honest peak of whoever did the replay.  Purely informational: it
    feeds :attr:`FleetReplayResult.worker_peak_rss_mb` and never touches
    an export.
    """
    bundle = AppBundle(payload["bundle_root"])
    cfg = payload["cfg"]
    store = TemplateStore()
    results = [
        _replay_one(bundle, name, timestamps, cfg, store)
        for name, timestamps in payload["functions"]
    ]
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "functions": results,
        "worker_peak_rss_mb": round(peak_kb / 1024, 1),
    }


def _merge_fleet_window(rollups: list[WindowRollup]) -> WindowRollup:
    """Rebuild one fleet-wide ``"*"`` window from per-function rollups.

    Callers pass rollups in sorted-function order so histogram merges
    happen in a deterministic sequence.  The fleet concurrency peak is
    the sum of per-function peaks: shards cannot observe cross-function
    interleaving, so this is the documented upper bound.
    """
    peak = 0
    fleet: WindowRollup | None = None
    for rollup in rollups:
        data = rollup.to_dict()
        data["function"] = FLEET
        copy = WindowRollup.from_dict(data)
        if fleet is None:
            fleet = copy
        else:
            fleet.merge(copy)
        peak += rollup.concurrency_peak
    assert fleet is not None
    fleet.concurrency_peak = peak
    return fleet


def _merge_report(
    payloads: list[dict],
    *,
    window_s: float,
    policy: SloPolicy,
) -> FleetReport:
    """Merge per-function windows into one report, fleet rollups included."""
    windows: dict[tuple[int, str], WindowRollup] = {}
    by_index: dict[int, list[WindowRollup]] = {}
    for payload in sorted(payloads, key=lambda p: p["function"]):
        for data in payload["windows"]:
            rollup = WindowRollup.from_dict(data)
            index = int(round(rollup.start_s / window_s))
            windows[(index, rollup.function)] = rollup
            by_index.setdefault(index, []).append(rollup)
    for index, group in by_index.items():
        # group is already in sorted-function order (payloads were sorted)
        windows[(index, FLEET)] = _merge_fleet_window(group)

    ordered = [windows[key] for key in sorted(windows)]
    # Evaluate SLOs exactly like TelemetrySink.finalize: each window once,
    # in (window, function) order, re-emitting breaches as obs events.
    recorder = get_recorder()
    breaches = []
    for rollup in ordered:
        recorder.counter_add("telemetry.windows_evaluated")
        for breach in policy.evaluate_window(rollup):
            breaches.append(breach)
            recorder.counter_add("telemetry.slo_breaches")
            recorder.event("slo.breach", breach.to_dict())
    return FleetReport(
        window_s=window_s,
        windows=ordered,
        breaches=breaches,
        slos=list(policy.rules),
        # Deterministic metadata only: worker count and timings must not
        # leak into the export, or byte-identity across pool sizes breaks.
        meta={
            "engine": "fleet-replay",
            "functions": len(payloads),
            "fleet_concurrency": "sum-of-function-peaks (upper bound)",
        },
    )


_TIMESTAMP_TAG = '"timestamp": '
_TIMESTAMP_TAG_BYTES = _TIMESTAMP_TAG.encode("ascii")

#: Above this combined shard size the merge streams line-at-a-time instead
#: of sorting in memory (the in-memory path holds every line at once).
_MERGE_IN_MEMORY_BYTES = 256 * 1024 * 1024


def _line_timestamp(line: str) -> float:
    """The merge key, sliced straight out of a ``json.dumps`` spill line.

    ``float()`` of the dumped repr round-trips exactly; anything
    surprising falls back to a full parse.
    """
    start = line.find(_TIMESTAMP_TAG)
    if start >= 0:
        start += len(_TIMESTAMP_TAG)
        end = line.find(",", start)
        if end > start:
            try:
                return float(line[start:end])
            except ValueError:
                pass
    return json.loads(line)["timestamp"]


def _line_timestamps_bytes(lines: list[bytes]) -> list[float]:
    """Merge keys for undecoded byte lines, sliced like :func:`_line_timestamp`.

    With numpy the raw repr slices convert to float64 in one C call —
    ``astype`` parses with the same correct rounding as Python's
    ``float()``, so the keys (and therefore the stable sort order) match
    the text path bit for bit.  Lines whose slice does not parse fall
    back to a full ``json.loads`` (it accepts bytes directly).
    """
    tag = _TIMESTAMP_TAG_BYTES
    tag_len = len(tag)
    raw: list[bytes] = []
    for line in lines:
        start = line.find(tag)
        end = line.find(b",", start + tag_len) if start >= 0 else -1
        raw.append(line[start + tag_len : end] if start >= 0 and end > 0 else b"")
    if _np is not None:
        try:
            return _np.asarray(raw, dtype="S").astype(_np.float64).tolist()
        except ValueError:
            pass
    keys: list[float] = []
    for line, slice_ in zip(lines, raw):
        try:
            keys.append(float(slice_.decode("ascii")))
        except (UnicodeDecodeError, ValueError):
            keys.append(json.loads(line)["timestamp"])
    return keys


def _merge_logs(shards: list[tuple[str, Path]], destination: Path) -> Path:
    """K-way merge per-function JSONL shards by (timestamp, function, seq).

    Small merges (combined shards under ~256 MB) sort in memory: shard
    lines arrive already in (function, position) order, so one *stable*
    sort on the timestamp alone reproduces the full merge key.  Larger
    merges stream through :func:`heapq.merge` with one resident line per
    shard.  Both paths write the same bytes.
    """
    ordered = sorted(shards)
    destination.parent.mkdir(parents=True, exist_ok=True)
    total = sum(path.stat().st_size for _, path in ordered)
    if total <= _MERGE_IN_MEMORY_BYTES:
        # Bytes end to end: shards were written as UTF-8, the merged
        # export is the same lines reordered, so decoding 100+ MB just to
        # re-encode it is pure overhead.
        lines: list[bytes] = []
        for _, path in ordered:
            for line in path.read_bytes().splitlines(keepends=True):
                if not line.strip():
                    continue
                if not line.endswith(b"\n"):
                    line += b"\n"
                lines.append(line)
        keys = _line_timestamps_bytes(lines)
        if _np is not None:
            order = _np.argsort(_np.asarray(keys), kind="stable").tolist()
        else:
            order = [
                i
                for _, i in sorted(
                    zip(keys, range(len(lines))), key=lambda p: p[0]
                )
            ]
        atomic_write_bytes(destination, b"".join(map(lines.__getitem__, order)))
        return destination

    def rows(name: str, path: Path):
        with path.open("r", encoding="utf-8") as handle:
            for position, line in enumerate(handle):
                if not line.strip():
                    continue
                yield (_line_timestamp(line), name, position, line)

    streams = [rows(name, path) for name, path in ordered]
    # Atomic replace: a crash mid-merge leaves the previous export (or
    # nothing) in place, never a torn half-merge, and the streaming
    # generator keeps the memory bound of the plain-write version.
    atomic_write_lines(
        destination,
        (line.rstrip("\n") for _, _, _, line in heapq.merge(*streams)),
    )
    return destination


def report_from_log(
    path: Path | str,
    *,
    window_s: float = 3600.0,
    subbuckets: int = 64,
    slos: Iterable[SloRule] | SloPolicy = (),
) -> FleetReport:
    """Rebuild a :class:`FleetReport` by streaming a record JSON-lines log.

    Records are folded one at a time through a fresh
    :class:`~repro.platform.telemetry.TelemetrySink`, so a spilled or
    merged million-record fleet log can be dashboarded without ever
    materializing the record list.  Arrivals are recovered as
    ``timestamp - e2e`` (the emulator stamps records at completion),
    matching the sink's own default.  Records carry emulator-clock
    timestamps, so windows here are emulator-time — a replay's own
    report windows by *trace* arrival time instead and will bucket
    differently; rates, percentiles, and costs still agree.
    """
    policy = slos if isinstance(slos, SloPolicy) else SloPolicy(list(slos))
    sink = TelemetrySink(window_s=window_s, subbuckets=subbuckets, slos=policy)
    count = 0
    for record in iter_jsonl(path):
        sink.observe(record)
        count += 1
    if count == 0:
        raise PlatformError(f"no records in log: {path}")
    report = sink.report()
    report.meta = {"engine": "log-replay", "source": Path(path).name}
    return report


def _pool_context(preferred: str):
    for method in (preferred, "forkserver", "spawn"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    return multiprocessing.get_context()


def _run_shards_supervised(
    payloads: list[dict],
    cfg: dict,
    mp_context: str,
) -> tuple[list[dict], int]:
    """Run every shard on a process pool, resuming shards whose worker dies.

    A SIGKILLed/OOM-killed worker surfaces as :class:`BrokenProcessPool`
    on its future (the pool is unusable afterwards).  Completed shards
    are kept; the dead ones are resubmitted on a fresh pool with
    ``resume`` set, so each restart continues from the shard's last
    on-disk checkpoint instead of starting over.  Genuine exceptions
    raised *by* a shard (not worker death) propagate unchanged — a
    deterministic error would only recur.  Returns the per-shard results
    in submission order plus the number of shard resumptions.
    """
    pending: dict[int, dict] = dict(enumerate(payloads))
    results: dict[int, list[dict]] = {}
    resumed = 0
    budget = 3 * len(payloads)
    while pending:
        with ProcessPoolExecutor(
            max_workers=len(pending),
            mp_context=_pool_context(mp_context),
        ) as pool:
            futures = {
                pool.submit(_replay_shard, payload): index
                for index, payload in pending.items()
            }
            # Drain every future even after the pool breaks: shards that
            # finished before the crash keep their results and are never
            # re-run.
            for future in as_completed(futures):
                index = futures[future]
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    continue
                pending.pop(index)
        if not pending:
            break
        if cfg.get("checkpoint_dir") is None:
            raise PlatformError(
                f"{len(pending)} replay worker(s) died and no checkpoint_dir "
                "is set; pass checkpoint_dir= to make fleet replay resumable"
            )
        resumed += len(pending)
        if resumed > budget:
            raise PlatformError(
                f"replay workers kept dying ({resumed} shard restarts); "
                "giving up — checkpoints remain on disk for a manual resume"
            )
        # A breaking pool terminates its other workers too, so any of
        # them may have died mid-atomic-write: sweep the temp debris the
        # same way an explicit --resume entry does.
        sweep_stale(Path(cfg["checkpoint_dir"]))
        # cfg is the one dict shared by every payload: flipping it here
        # makes all resubmitted shards resume from their checkpoints.
        cfg["resume"] = True
    return [results[index] for index in range(len(payloads))], resumed


def replay_fleet(
    bundle: AppBundle | Path | str,
    trace: FleetTrace,
    event: Any = None,
    *,
    workers: int = 1,
    keep_alive_s: float = DEFAULT_KEEP_ALIVE_S,
    window_s: float = 3600.0,
    subbuckets: int = 64,
    slos: Iterable[SloRule] | SloPolicy = (),
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    hosts: HostConfig | None = None,
    dead_letters: Path | str | None = None,
    record_detail: bool = False,
    log_dir: Path | str | None = None,
    merged_log: Path | str | None = None,
    profile_dir: Path | str | None = None,
    merged_profiles: Path | str | None = None,
    spill_threshold: int | None = None,
    verify_ledger: bool = True,
    mp_context: str = "fork",
    engine: str = "auto",
    min_shard_invocations: int | None = None,
    checkpoint_dir: Path | str | None = None,
    checkpoint_every: int | None = None,
    resume: bool = False,
) -> FleetReplayResult:
    """Replay a multi-function fleet trace; merge deterministically.

    Every function in *trace* is deployed from *bundle* and replayed on
    its own fresh emulator (see the module docstring for why that is the
    determinism unit).  ``workers=1`` replays inline; ``workers>1``
    distributes whole functions across a process pool, balanced by
    invocation count.  ``log_dir`` streams each function's records to
    ``<log_dir>/<function>.jsonl`` (bounded worker memory when
    ``spill_threshold`` is set); ``merged_log`` additionally k-way merges
    the shards into one timestamp-ordered export.  ``verify_ledger``
    float-exactly reconciles each worker's ledger against its records
    before anything is merged (O(functions) via the log's incremental
    billing summary).

    ``engine`` selects the per-function replay engine: ``"auto"``
    (default) uses the batch :class:`~repro.platform.vector.
    VectorReplayer` when numpy is importable (the scalar template
    :class:`~repro.platform.kernel.KernelReplayer` otherwise) whenever
    the workload is replayable, and falls back to the reference
    :class:`~repro.platform.replay.TraceReplayer` for the rest;
    ``"vector"`` and ``"kernel"`` require their engine (raising when it
    cannot serve — ``"vector"`` additionally requires numpy);
    ``"reference"`` forces the reference engine.  All engines produce
    byte-identical exports.

    ``profile_dir`` enables dollar attribution: each worker captures a
    :class:`~repro.obs.attribution.ColdStartProfile` per cold start and
    spools them to ``<profile_dir>/<function>.profiles.jsonl``;
    ``merged_profiles`` additionally folds the spools into one store in
    sorted-function order, so the merged file is byte-identical at any
    worker count.  When the caller has a live obs recorder, workers
    replay under their own in-memory recorders and the parent folds the
    counter/gauge totals back in sorted-function order — fleet counter
    totals match a single-process run regardless of sharding.

    ``hosts`` places every instance on a bin-packed pool of
    memory-constrained hosts (see :mod:`repro.platform.hosts`).  The pool
    is **per function**, mirroring warm-instance state: each worker
    builds its own ``HostPool`` from the shared config, so placement,
    eviction, and host-fault decisions depend only on that function's
    arrival history and the plan seed — never on which process replayed
    it.  The trade-off is that functions do not contend for the same
    hosts; ``hosts.count`` is hosts *per function*, and fleet-wide
    utilization in ``meta["hosts"]`` aggregates per-function pools.
    Host faults ride in on ``faults.host_faults``.

    ``dead_letters`` streams every dead-lettered request (with its full
    attempt history) to one JSON-lines file, in sorted-function order —
    byte-identical at any worker count.

    ``checkpoint_dir`` turns the replay into a kill-and-resume run: each
    worker snapshots its engine state to ``<checkpoint_dir>/<function>.
    ckpt.json`` every ``checkpoint_every`` served attempts (default 1000)
    and drops a ``.done.json`` payload when a function completes.  The
    parent supervises the pool: a worker killed mid-shard (SIGKILL, OOM,
    spot loss) is detected and its shard resubmitted with resume
    semantics, so only the invocations since the last checkpoint run
    twice.  ``resume=True`` does the same after the *parent* died —
    completed functions are adopted from their done payloads, partial
    ones continue from their checkpoints, and stale atomic-write temp
    debris is swept first.  Either way the merged exports stay
    byte-identical to an uninterrupted same-seed run.

    ``min_shard_invocations`` guards against the parallel-slowdown
    regime: when set, the shard count is capped so every worker receives
    at least that many invocations — below the break-even point (see
    ``benchmarks/bench_replay_throughput.py``) process startup dominates
    and extra workers make the replay *slower*.  The cap never changes
    the output, only how it is partitioned.

    Returns a :class:`FleetReplayResult` whose report, ledger totals,
    per-function stats, and log bytes are identical for identical
    ``(bundle, trace, seed)`` inputs at any worker count and either
    engine.
    """
    if workers < 1:
        raise PlatformError(f"need at least one worker: {workers}")
    if engine not in ("auto", "kernel", "vector", "reference"):
        raise PlatformError(
            f"unknown engine {engine!r}: expected auto, kernel, vector, or "
            "reference"
        )
    if engine == "vector" and not HAVE_NUMPY:
        raise PlatformError(
            "engine='vector' needs numpy (install the [perf] extra); "
            "engine='auto' degrades to the scalar kernel without it"
        )
    if min_shard_invocations is not None and min_shard_invocations < 0:
        raise PlatformError(
            f"min_shard_invocations must be non-negative: {min_shard_invocations}"
        )
    if len(trace) == 0:
        raise PlatformError("fleet trace has no functions")
    if merged_log is not None and log_dir is None:
        raise PlatformError("merged_log requires log_dir")
    if merged_profiles is not None and profile_dir is None:
        raise PlatformError("merged_profiles requires profile_dir")
    if isinstance(faults, FaultPlan) is False and faults is not None:
        raise PlatformError(
            "replay_fleet takes a FaultPlan (picklable), not a FaultInjector"
        )
    if hosts is not None and not isinstance(hosts, HostConfig):
        raise PlatformError(
            "replay_fleet takes a HostConfig (picklable), not a HostPool"
        )
    if checkpoint_every is not None and checkpoint_dir is None:
        raise PlatformError("checkpoint_every requires checkpoint_dir")
    if resume and checkpoint_dir is None:
        raise PlatformError("resume requires checkpoint_dir")
    if checkpoint_dir is not None and checkpoint_every is None:
        checkpoint_every = 1000
    bundle_root = bundle.root if isinstance(bundle, AppBundle) else Path(bundle)
    policy = slos if isinstance(slos, SloPolicy) else SloPolicy(list(slos))
    if log_dir is not None:
        Path(log_dir).mkdir(parents=True, exist_ok=True)
    if profile_dir is not None:
        Path(profile_dir).mkdir(parents=True, exist_ok=True)
    if checkpoint_dir is not None:
        Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
        if resume:
            sweep_stale(Path(checkpoint_dir))

    cfg = {
        "event": event,
        "keep_alive_s": keep_alive_s,
        "window_s": float(window_s),
        "subbuckets": subbuckets,
        "retry": retry,
        "faults": faults,
        "hosts": hosts,
        "dead_letters": dead_letters is not None,
        "record_detail": record_detail,
        "log_dir": str(log_dir) if log_dir is not None else None,
        "profile_dir": str(profile_dir) if profile_dir is not None else None,
        "spill_threshold": spill_threshold,
        "verify_ledger": verify_ledger,
        "engine": engine,
        "checkpoint_dir": str(checkpoint_dir) if checkpoint_dir is not None else None,
        "checkpoint_every": checkpoint_every,
        "resume": resume,
        # Captured at call time: workers spool obs counters only when the
        # caller actually has a live recorder to fold them into.
        "spool_obs": get_recorder().enabled,
    }
    effective_workers = workers
    if min_shard_invocations:
        effective_workers = min(
            workers, max(1, trace.invocations // min_shard_invocations)
        )
    shards = trace.partition(effective_workers)
    payloads = [
        {
            "bundle_root": str(bundle_root),
            "functions": [
                (t.function_id, t.timestamps) for t in shard
            ],
            "cfg": cfg,
        }
        for shard in shards
    ]

    recorder = get_recorder()
    started = time.perf_counter()
    with recorder.span(
        "fleet.replay",
        label=f"{len(trace)} functions",
        functions=len(trace),
        arrivals=trace.invocations,
        workers=workers,
    ) as span:
        if workers == 1 or len(payloads) == 1:
            shard_results = [_replay_shard(payload) for payload in payloads]
            supervisor_resumes = 0
        else:
            shard_results, supervisor_resumes = _run_shards_supervised(
                payloads, cfg, mp_context
            )
        wall_s = time.perf_counter() - started

        worker_peaks = [shard["worker_peak_rss_mb"] for shard in shard_results]
        results = [r for shard in shard_results for r in shard["functions"]]
        results.sort(key=lambda r: r["function"])

        # Resume accounting: supervisor restarts, plus — when the caller
        # asked to resume a crashed parent — every shard that actually
        # adopted on-disk state.  Purely informational; never exported
        # (FleetReport.save drops meta["resume"] to keep dashboards
        # byte-identical across crash histories).
        reexecuted_invocations = sum(r.get("reexecuted", 0) for r in results)
        resumed_shards = supervisor_resumes
        if resume:
            adopted = {r["function"] for r in results if r.get("resumed")}
            resumed_shards += sum(
                1
                for payload in payloads
                if any(fn in adopted for fn, _ in payload["functions"])
            )

        # Fold worker obs counters back into the caller's recorder in
        # sorted-function order (results are sorted above): totals are
        # identical at any worker count.
        for result in results:
            obs = result.get("obs")
            if not obs:
                continue
            for counter_name, value in obs["counters"].items():
                recorder.counter_add(counter_name, value)
            for gauge_name, value in obs["gauges"].items():
                recorder.gauge_max(gauge_name, value)

        report = _merge_report(results, window_s=float(window_s), policy=policy)
        if checkpoint_dir is not None:
            report.meta["resume"] = {
                "resumed_shards": resumed_shards,
                "reexecuted_invocations": reexecuted_invocations,
            }
        host_stats: dict[str, dict[str, Any]] | None = None
        if hosts is not None:
            # Aggregate per-function pools in sorted-function order.
            # Counters sum; utilization peaks max (pools are disjoint, so
            # the fleet peak is the worst single pool, not a sum).
            host_stats = {}
            totals: dict[str, Any] = {
                "hosts_per_function": hosts.count,
                "memory_mb": hosts.memory_mb,
                "placement": hosts.placement,
                "placements": 0,
                "evictions": 0,
                "host_crashes": 0,
                "spot_reclaims": 0,
                "instances_lost": 0,
                "capacity_throttles": 0,
                "peak_util": 0.0,
            }
            for result in results:
                pool_stats = result["hosts"]
                host_stats[result["function"]] = pool_stats
                for key in (
                    "placements",
                    "evictions",
                    "host_crashes",
                    "spot_reclaims",
                    "instances_lost",
                    "capacity_throttles",
                ):
                    totals[key] += pool_stats[key]
                if pool_stats["peak_util"] > totals["peak_util"]:
                    totals["peak_util"] = pool_stats["peak_util"]
            report.meta["hosts"] = totals
        dead_letters_path: Path | None = None
        if dead_letters is not None:
            # Sorted-function order (results are sorted above): the JSONL
            # export is byte-identical at any worker count.
            dead_letters_path = Path(dead_letters)
            dead_letters_path.parent.mkdir(parents=True, exist_ok=True)
            letters = [
                json.dumps(letter)
                for result in results
                for letter in result["dead_letters"] or ()
            ]
            atomic_write_lines(dead_letters_path, letters)
            report.meta["dead_letters"] = len(letters)
        ledger = BillingLedger()
        stats: dict[str, FunctionReplayStats] = {}
        log_paths: dict[str, Path] = {}
        profile_paths: dict[str, Path] = {}
        for result in results:
            name = result["function"]
            bill = result["bill"]
            ledger.bills[name] = FunctionBill(
                function=name,
                invocation_cost=bill["invocation_cost"],
                invocations=bill["invocations"],
                cold_starts=bill["cold_starts"],
                throttles=bill["throttles"],
            )
            stats[name] = result["stats"]
            if result["log_path"] is not None:
                log_paths[name] = Path(result["log_path"])
            if result["profile_path"] is not None:
                profile_paths[name] = Path(result["profile_path"])

        merged_path: Path | None = None
        if merged_log is not None:
            merged_path = _merge_logs(sorted(log_paths.items()), Path(merged_log))

        merged_profiles_path: Path | None = None
        if merged_profiles is not None:
            # Sorted-function fold: the merged spool is byte-identical at
            # any worker count because each shard file already is.
            merged_store = AttributionStore.merge(
                AttributionStore.load_jsonl(path)
                for _, path in sorted(profile_paths.items())
            )
            merged_profiles_path = Path(merged_profiles)
            merged_profiles_path.parent.mkdir(parents=True, exist_ok=True)
            merged_store.write_jsonl(merged_profiles_path)

        recorder.counter_add("fleet.functions", len(results))
        recorder.counter_add("fleet.arrivals", sum(s.arrivals for s in stats.values()))
        if span is not None:
            span.set_attr("wall_s", round(wall_s, 3))
            span.set_attr("breaches", len(report.breaches))
    return FleetReplayResult(
        report=report,
        ledger=ledger,
        stats=stats,
        workers=workers,
        wall_s=wall_s,
        log_paths=log_paths,
        merged_log=merged_path,
        profile_paths=profile_paths,
        merged_profiles=merged_profiles_path,
        dead_letters=dead_letters_path,
        host_stats=host_stats,
        resumed_shards=resumed_shards,
        reexecuted_invocations=reexecuted_invocations,
        worker_peak_rss_mb=worker_peaks,
    )
