"""Client-side retries: exponential backoff with seeded jitter.

The emulator's failure model (:mod:`repro.platform.faults` plus the
intrinsic timeout/OOM/throttle outcomes) makes individual invocations
fail; this module is the client half that absorbs the *transient* ones.
A :class:`RetryPolicy` declares which statuses are worth retrying, how
many attempts a request gets, and how the backoff delay grows; a
:class:`RetrySession` executes the policy with a seeded RNG over the
virtual timeline — no wall clock, so a replay with the same seed backs
off identically every run.

Requests that exhaust their attempts (or the session-wide retry budget)
are *dead-lettered*, not dropped: :class:`DeadLetter` keeps the full
attempt history so "zero lost invocations" is a checkable claim, not a
hope.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import PlatformError
from repro.platform.logs import InvocationRecord, InvocationStatus

__all__ = [
    "RetryPolicy",
    "RetrySession",
    "RetryOutcome",
    "DeadLetter",
    "RETRYABLE_DEFAULT",
]

#: Statuses that are transient by construction: a throttle clears when the
#: burst passes, a crashed instance is replaced by the next cold start.
#: Timeouts and OOMs are *deterministic* for a given bundle and input, so
#: retrying them by default would just burn the budget.
RETRYABLE_DEFAULT = frozenset({InvocationStatus.THROTTLED, InvocationStatus.CRASHED})


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + jitter, Lambda-client style.

    ``max_attempts`` counts the first try; ``budget`` (optional) caps the
    *total* retries a session may spend across all requests, so a hard
    outage cannot multiply load without bound.  ``jitter`` spreads each
    delay uniformly over ``[delay * (1 - jitter), delay * (1 + jitter)]``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.2
    multiplier: float = 2.0
    max_delay_s: float = 10.0
    jitter: float = 0.25
    retryable: frozenset[InvocationStatus] = RETRYABLE_DEFAULT
    budget: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PlatformError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise PlatformError(
                f"need 0 <= base_delay_s <= max_delay_s, got "
                f"{self.base_delay_s}/{self.max_delay_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise PlatformError(f"jitter must be in [0, 1]: {self.jitter}")
        object.__setattr__(
            self,
            "retryable",
            frozenset(InvocationStatus(s) for s in self.retryable),
        )

    def retries_status(self, status: InvocationStatus) -> bool:
        return InvocationStatus(status) in self.retryable

    def session(self) -> "RetrySession":
        return RetrySession(self)


@dataclass(frozen=True)
class DeadLetter:
    """One request that failed every attempt it was allowed."""

    function: str
    arrival: float
    attempts: tuple[InvocationRecord, ...]

    @property
    def last(self) -> InvocationRecord:
        return self.attempts[-1]

    def to_dict(self) -> dict:
        """JSON-safe dict with a stable field order (JSONL export)."""
        return {
            "function": self.function,
            "arrival": self.arrival,
            "attempts": [record.to_dict() for record in self.attempts],
        }


class RetrySession:
    """Stateful execution of one policy: seeded jitter + budget tracking."""

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self.retries_used = 0
        self._rng = random.Random(policy.seed)

    def should_retry(self, record: InvocationRecord, attempt: int) -> bool:
        """May attempt ``attempt`` (1-based) be followed by another?"""
        if not self.policy.retries_status(record.status):
            return False
        if attempt >= self.policy.max_attempts:
            return False
        if self.policy.budget is not None and self.retries_used >= self.policy.budget:
            return False
        return True

    def next_delay_s(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1``; consumes budget + RNG."""
        self.retries_used += 1
        delay = min(
            self.policy.base_delay_s * self.policy.multiplier ** (attempt - 1),
            self.policy.max_delay_s,
        )
        if self.policy.jitter > 0.0:
            spread = self.policy.jitter
            delay *= 1.0 - spread + 2.0 * spread * self._rng.random()
        return delay

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe jitter-RNG position + budget consumption."""
        from repro.platform.checkpoint import rng_state_to_json

        return {
            "retries_used": self.retries_used,
            "rng": rng_state_to_json(self._rng.getstate()),
        }

    def restore(self, state: dict) -> None:
        from repro.platform.checkpoint import rng_state_from_json

        self.retries_used = int(state["retries_used"])
        self._rng.setstate(rng_state_from_json(state["rng"]))


@dataclass
class RetryOutcome:
    """Bookkeeping a replay collects while retrying one request."""

    attempts: list[InvocationRecord] = field(default_factory=list)

    @property
    def final(self) -> InvocationRecord:
        return self.attempts[-1]

    @property
    def retries(self) -> int:
        return max(len(self.attempts) - 1, 0)
