"""Billing ledger: aggregates per-invocation and SnapStart charges."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BillingLedger", "FunctionBill"]


@dataclass
class FunctionBill:
    """Cumulative charges for one deployed function."""

    function: str
    invocation_cost: float = 0.0
    snapstart_restore_cost: float = 0.0
    snapstart_cache_cost: float = 0.0
    invocations: int = 0
    cold_starts: int = 0

    @property
    def snapstart_cost(self) -> float:
        return self.snapstart_restore_cost + self.snapstart_cache_cost

    @property
    def total(self) -> float:
        return self.invocation_cost + self.snapstart_cost


@dataclass
class BillingLedger:
    """Account book across every function the emulator runs."""

    bills: dict[str, FunctionBill] = field(default_factory=dict)

    def bill_for(self, function: str) -> FunctionBill:
        if function not in self.bills:
            self.bills[function] = FunctionBill(function=function)
        return self.bills[function]

    def charge_invocation(self, function: str, cost: float, *, cold: bool) -> None:
        bill = self.bill_for(function)
        bill.invocation_cost += cost
        bill.invocations += 1
        if cold:
            bill.cold_starts += 1

    def charge_snapstart_restore(self, function: str, cost: float) -> None:
        self.bill_for(function).snapstart_restore_cost += cost

    def charge_snapstart_cache(self, function: str, cost: float) -> None:
        self.bill_for(function).snapstart_cache_cost += cost

    @property
    def total(self) -> float:
        return sum(bill.total for bill in self.bills.values())
