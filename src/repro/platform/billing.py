"""Billing ledger: aggregates per-invocation and SnapStart charges."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BillingLedger", "FunctionBill"]


@dataclass
class FunctionBill:
    """Cumulative charges for one deployed function."""

    function: str
    invocation_cost: float = 0.0
    snapstart_restore_cost: float = 0.0
    snapstart_cache_cost: float = 0.0
    invocations: int = 0
    cold_starts: int = 0
    #: Requests rejected by concurrency control — counted, never billed.
    throttles: int = 0

    @property
    def snapstart_cost(self) -> float:
        return self.snapstart_restore_cost + self.snapstart_cache_cost

    @property
    def total(self) -> float:
        return self.invocation_cost + self.snapstart_cost

    def charge_batch(
        self,
        statuses,
        costs,
        *,
        success_status: int,
        throttled_status: int,
        cold_starts: int,
        throttles: int,
    ) -> tuple[int, int]:
        """Fold one emission batch into the bill, in row order.

        The bulk twin of :meth:`BillingLedger.charge_invocation` /
        :meth:`~BillingLedger.charge_throttle` for the vector replay
        engine: ``invocation_cost`` stays a sequential float fold (its
        addition order is observable in exports), while the int counters
        take segment aggregates.  Returns ``(billed, delivered)`` —
        non-throttled and successful row counts — so the caller can
        update its own tallies without a second pass.
        """
        total = self.invocation_cost
        billed = 0
        delivered = 0
        for status, cost in zip(statuses, costs):
            if status != throttled_status:
                total += cost
                billed += 1
                if status == success_status:
                    delivered += 1
        self.invocation_cost = total
        self.invocations += billed
        self.cold_starts += cold_starts
        self.throttles += throttles
        return billed, delivered

    def charge_block(
        self,
        *,
        invocation_cost: float,
        invocations: int,
        cold_starts: int,
    ) -> None:
        """Fold an all-billed columnar block into the bill.

        The chain-path twin of :meth:`charge_batch`: no row in the block
        is throttled, so the caller — which holds the cost column as an
        array — continues the sequential ``invocation_cost`` fold itself
        (a seeded ``cumsum`` is bit-identical to the per-row loop) and
        hands over the finished value with the segment's int aggregates.
        """
        self.invocation_cost = invocation_cost
        self.invocations += invocations
        self.cold_starts += cold_starts


@dataclass
class BillingLedger:
    """Account book across every function the emulator runs."""

    bills: dict[str, FunctionBill] = field(default_factory=dict)

    def bill_for(self, function: str) -> FunctionBill:
        if function not in self.bills:
            self.bills[function] = FunctionBill(function=function)
        return self.bills[function]

    def charge_invocation(self, function: str, cost: float, *, cold: bool) -> None:
        bill = self.bill_for(function)
        bill.invocation_cost += cost
        bill.invocations += 1
        if cold:
            bill.cold_starts += 1

    def charge_throttle(self, function: str) -> None:
        """Record a throttled request: it appears in the book, costs nothing."""
        self.bill_for(function).throttles += 1

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe per-function bill state (floats round-trip exactly)."""
        return {
            name: {
                "invocation_cost": bill.invocation_cost,
                "snapstart_restore_cost": bill.snapstart_restore_cost,
                "snapstart_cache_cost": bill.snapstart_cache_cost,
                "invocations": bill.invocations,
                "cold_starts": bill.cold_starts,
                "throttles": bill.throttles,
            }
            for name, bill in self.bills.items()
        }

    def restore(self, state: dict) -> None:
        self.bills = {
            name: FunctionBill(function=name, **fields)
            for name, fields in state.items()
        }

    def reconcile(self, records) -> None:
        """Assert the ledger matches per-record statuses *exactly*.

        Every billed record's cost must sum to its function's
        ``invocation_cost`` (float-identical, since both sides add the
        same numbers in the same order), billed/throttled counts must
        match, and no function may appear on one side only.  Raises
        :class:`AssertionError` on any mismatch — this is the chaos
        acceptance check, usable from tests and benchmarks alike.
        When *records* maintains an incremental ``billing_summary()``
        (:class:`~repro.platform.logs.ExecutionLog` does), the check runs
        off those per-function totals in O(functions) instead of
        materialising every record — same sums, same order, same
        assertions.
        """
        summary = getattr(records, "billing_summary", None)
        if callable(summary):
            self._reconcile_summary(summary())
            return
        expected: dict[str, dict[str, float]] = {}
        for record in records:
            entry = expected.setdefault(
                record.function,
                {"cost": 0.0, "invocations": 0, "cold": 0, "throttles": 0},
            )
            if record.billed:
                entry["cost"] += record.cost_usd
                entry["invocations"] += 1
                if record.is_cold:
                    entry["cold"] += 1
            else:
                assert record.cost_usd == 0.0, (
                    f"{record.request_id}: throttled record carries a cost"
                )
                entry["throttles"] += 1
        billed_functions = {
            name
            for name, bill in self.bills.items()
            if bill.invocations or bill.throttles
        }
        assert set(expected) == billed_functions, (
            f"ledger functions {sorted(billed_functions)} != "
            f"record functions {sorted(expected)}"
        )
        for name, entry in expected.items():
            bill = self.bills[name]
            assert bill.invocation_cost == entry["cost"], (
                f"{name}: ledger {bill.invocation_cost} != records {entry['cost']}"
            )
            assert bill.invocations == entry["invocations"], name
            assert bill.cold_starts == entry["cold"], name
            assert bill.throttles == entry["throttles"], name

    def _reconcile_summary(
        self, expected: dict[str, tuple[float, int, int, int, float]]
    ) -> None:
        billed_functions = {
            name
            for name, bill in self.bills.items()
            if bill.invocations or bill.throttles
        }
        assert set(expected) == billed_functions, (
            f"ledger functions {sorted(billed_functions)} != "
            f"record functions {sorted(expected)}"
        )
        for name, (cost, invocations, cold, throttles, throttled_cost) in (
            expected.items()
        ):
            assert throttled_cost == 0.0, (
                f"{name}: throttled records carry a cost: {throttled_cost}"
            )
            bill = self.bills[name]
            assert bill.invocation_cost == cost, (
                f"{name}: ledger {bill.invocation_cost} != records {cost}"
            )
            assert bill.invocations == invocations, name
            assert bill.cold_starts == cold, name
            assert bill.throttles == throttles, name

    def charge_snapstart_restore(self, function: str, cost: float) -> None:
        self.bill_for(function).snapstart_restore_cost += cost

    def charge_snapstart_cache(self, function: str, cost: float) -> None:
        self.bill_for(function).snapstart_cache_cost += cost

    @property
    def total(self) -> float:
        return sum(bill.total for bill in self.bills.values())
