"""Serverless platform emulator (the AWS Lambda substitute).

Implements the lifecycle of Figure 1 over a virtual clock: unbilled
platform preparation (instance init + image transmission), billed Function
Initialization, and billed Function Execution — with warm instances kept
alive for a configurable period, forced cold starts via function updates
(the paper's methodology), REPORT-style execution logs, Eq. 1 billing, and
an optional SnapStart mode backed by the checkpoint/restore simulator.

Failure semantics ride on the same virtual clock: seeded fault injection
(:mod:`repro.platform.faults`), intrinsic timeouts/OOM kills, Lambda-
faithful throttling, client-side retries with backoff
(:mod:`repro.platform.retry`), and per-record statuses threaded through
logs, billing, and telemetry.

Host failure domains (:mod:`repro.platform.hosts`) add the physical
substrate: instances bin-packed onto memory-constrained hosts, LRU
eviction under pressure, and seeded host crash / spot-reclamation
faults.
"""

from repro.platform.clock import VirtualClock
from repro.platform.emulator import DeployedFunction, LambdaEmulator
from repro.platform.faults import (
    ExecCrash,
    FaultInjector,
    FaultPlan,
    FaultRates,
    HostFault,
    Outage,
)
from repro.platform.hosts import (
    PLACEMENT_POLICIES,
    Host,
    HostConfig,
    HostPool,
)
from repro.platform.fleet import (
    FleetReplayResult,
    FunctionReplayStats,
    replay_fleet,
    report_from_log,
)
from repro.platform.instance import FunctionInstance
from repro.platform.logs import (
    ExecutionLog,
    InvocationRecord,
    InvocationStatus,
    LogQuery,
    StartType,
)
from repro.platform.billing import BillingLedger
from repro.platform.replay import ReplayResult, TraceReplayer
from repro.platform.retry import (
    RETRYABLE_DEFAULT,
    DeadLetter,
    RetryOutcome,
    RetryPolicy,
    RetrySession,
)
from repro.platform.slo import FLEET, SloBreach, SloPolicy, SloRule
from repro.platform.telemetry import FleetReport, TelemetrySink, WindowRollup
from repro.platform.tuning import (
    CpuScalingModel,
    MemoryRecommendation,
    recommend_memory,
)
from repro.platform.vector import VectorReplayer

__all__ = [
    "VirtualClock",
    "LambdaEmulator",
    "DeployedFunction",
    "FunctionInstance",
    "ExecutionLog",
    "InvocationRecord",
    "InvocationStatus",
    "LogQuery",
    "StartType",
    "BillingLedger",
    "ReplayResult",
    "TraceReplayer",
    "VectorReplayer",
    "replay_fleet",
    "FleetReplayResult",
    "FunctionReplayStats",
    "report_from_log",
    "FaultRates",
    "Outage",
    "FaultPlan",
    "FaultInjector",
    "ExecCrash",
    "HostFault",
    "Host",
    "HostConfig",
    "HostPool",
    "PLACEMENT_POLICIES",
    "RetryPolicy",
    "RetrySession",
    "RetryOutcome",
    "DeadLetter",
    "RETRYABLE_DEFAULT",
    "FLEET",
    "SloRule",
    "SloBreach",
    "SloPolicy",
    "TelemetrySink",
    "WindowRollup",
    "FleetReport",
    "CpuScalingModel",
    "MemoryRecommendation",
    "recommend_memory",
]
