"""Serverless platform emulator (the AWS Lambda substitute).

Implements the lifecycle of Figure 1 over a virtual clock: unbilled
platform preparation (instance init + image transmission), billed Function
Initialization, and billed Function Execution — with warm instances kept
alive for a configurable period, forced cold starts via function updates
(the paper's methodology), REPORT-style execution logs, Eq. 1 billing, and
an optional SnapStart mode backed by the checkpoint/restore simulator.
"""

from repro.platform.clock import VirtualClock
from repro.platform.emulator import DeployedFunction, LambdaEmulator
from repro.platform.instance import FunctionInstance
from repro.platform.logs import ExecutionLog, InvocationRecord, LogQuery, StartType
from repro.platform.billing import BillingLedger
from repro.platform.replay import ReplayResult, TraceReplayer
from repro.platform.slo import FLEET, SloBreach, SloPolicy, SloRule
from repro.platform.telemetry import FleetReport, TelemetrySink, WindowRollup
from repro.platform.tuning import CpuScalingModel, MemoryRecommendation, recommend_memory

__all__ = [
    "VirtualClock",
    "LambdaEmulator",
    "DeployedFunction",
    "FunctionInstance",
    "ExecutionLog",
    "InvocationRecord",
    "LogQuery",
    "StartType",
    "BillingLedger",
    "ReplayResult",
    "TraceReplayer",
    "FLEET",
    "SloRule",
    "SloBreach",
    "SloPolicy",
    "TelemetrySink",
    "WindowRollup",
    "FleetReport",
    "CpuScalingModel",
    "MemoryRecommendation",
    "recommend_memory",
]
