"""The emulator's virtual clock.

Virtual seconds are calibrated 1:1 with the paper's wall-clock seconds;
advancing the clock is free, which is what makes 100-cold-start experiment
sweeps run in milliseconds.
"""

from __future__ import annotations

from repro.errors import PlatformError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing virtual time source (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0:
            raise PlatformError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time (no-op when already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> float:
        """Current instant, JSON-safe (floats round-trip bit-exactly)."""
        return self._now

    def restore(self, state: float) -> None:
        self._now = float(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(t={self._now:.3f}s)"
