"""Trace replay on the emulator: bursty arrivals against real instances.

The analytic :class:`~repro.traces.simulator.TraceSimulator` prices traces
without executing anything.  :class:`TraceReplayer` instead replays an
arrival sequence against the *real* emulator — every invocation actually
imports and runs the application — so bursty workloads exercise true
instance semantics: a request arriving while all warm instances are busy
spills onto a new instance and pays a full cold start (Section 2.1's
"part of a burst that exceeds the capacity of the currently deployed
instances").

Requests overlap in trace time, but the emulator executes them one at a
time; the replayer therefore keeps its own trace-time bookkeeping (per-
instance busy-until and last-served times) instead of the global virtual
clock, which only ever moves forward.

The replayer is also the client in the failure model: with a
:class:`~repro.platform.retry.RetryPolicy` it re-drives attempts whose
status is transient (backoff scheduled on the same trace timeline, via a
heap of pending attempts), dead-letters requests that exhaust their
attempts, and — given a :class:`~repro.core.fallback.FallbackManager` —
serves trigger errors from the original function while feeding the
manager's circuit breaker.  Every arrival ends as exactly one replayed
request or one dead letter: nothing is silently lost.

This module is the *reference semantics* the fast engines are judged
against: :class:`~repro.platform.kernel.KernelReplayer` (template
capture, scalar synthesis) and :class:`~repro.platform.vector.
VectorReplayer` (batched emission over the same templates) must both be
byte-identical to a :class:`TraceReplayer` run in every export, and the
parity suites in ``tests/platform/test_kernel.py`` and
``tests/platform/test_vector.py`` hold them to it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.core.fallback import SETUP_OVERHEAD_S, FallbackManager
from repro.errors import CheckpointError, PlatformError
from repro.obs import get_recorder
from repro.platform.checkpoint import (
    ReplayCheckpoint,
    SerialCounter,
    restore_platform_state,
    snapshot_platform_state,
)
from repro.platform.emulator import DeployedFunction, LambdaEmulator
from repro.platform.instance import FunctionInstance
from repro.platform.logs import InvocationRecord, StartType
from repro.platform.retry import DeadLetter, RetryPolicy

__all__ = ["ReplayResult", "ReplayedRequest", "TraceReplayer"]


@dataclass(frozen=True, slots=True)
class ReplayedRequest:
    """One arrival's outcome in trace time."""

    arrival: float
    completion: float
    record: InvocationRecord
    #: Which attempt (1-based) produced the final record.
    attempt: int = 1
    #: Whether the final record came from the fallback function.
    used_fallback: bool = False

    @property
    def is_cold(self) -> bool:
        return self.record.is_cold

    @property
    def e2e_s(self) -> float:
        return self.completion - self.arrival


@dataclass
class ReplayResult:
    """Outcome of replaying one arrival sequence."""

    requests: list[ReplayedRequest] = field(default_factory=list)
    dead_letters: list[DeadLetter] = field(default_factory=list)
    #: How many arrivals the replay was asked to drive.
    arrivals: int = 0
    #: Total attempts served, including retries and fallback invocations.
    attempts: int = 0
    retries: int = 0
    throttled: int = 0
    fallbacks: int = 0
    #: Attempts re-served after a crash-resume because they fell past the
    #: last checkpoint's durable watermark (0 on uninterrupted runs).
    reexecuted: int = 0

    @property
    def cold_starts(self) -> int:
        return sum(1 for r in self.requests if r.is_cold)

    @property
    def warm_starts(self) -> int:
        return sum(1 for r in self.requests if r.record.start_type is StartType.WARM)

    @property
    def delivered(self) -> int:
        """Requests whose final record succeeded."""
        return sum(1 for r in self.requests if r.record.ok)

    @property
    def lost(self) -> int:
        """Arrivals with neither a final outcome nor a dead letter.

        Always zero by construction; exposed so chaos runs can assert it.
        """
        return self.arrivals - len(self.requests) - len(self.dead_letters)

    @property
    def total_cost(self) -> float:
        return sum(r.record.cost_usd for r in self.requests)

    @property
    def peak_concurrency(self) -> int:
        """Maximum number of simultaneously in-flight requests."""
        edges: list[tuple[float, int]] = []
        for request in self.requests:
            edges.append((request.arrival, 1))
            edges.append((request.completion, -1))
        edges.sort()
        peak = current = 0
        for _, delta in edges:
            current += delta
            peak = max(peak, current)
        return peak


class TraceReplayer:
    """Replays timestamped arrivals against a deployed function."""

    def __init__(self, emulator: LambdaEmulator):
        self.emulator = emulator
        # Trace-time warm-pool bookkeeping, independent of the global
        # virtual clock.  Per function: a heap of (busy-until, seq,
        # instance) for in-flight instances and a LIFO stack of
        # (freed-at, instance) for idle ones.  Arrivals are non-decreasing
        # and every instance with busy-until <= arrival is moved to the
        # idle stack at each acquire, so the stack is monotone in freed-at
        # — the top is the most recently used instance, and a stale top
        # means everything beneath it is stale too.  Acquire and expiry
        # are therefore O(log instances) instead of a per-arrival linear
        # scan over the instance list.
        self._busy: dict[str, list[tuple[float, int, FunctionInstance]]] = {}
        self._idle: dict[str, list[tuple[float, FunctionInstance]]] = {}
        self._seq = SerialCounter()

    def replay(
        self,
        function_name: str,
        arrivals: list[float],
        event: Any,
        context: Any = None,
        *,
        retry: RetryPolicy | None = None,
        fallback: FallbackManager | None = None,
        checkpoint: ReplayCheckpoint | None = None,
        resume_state: dict | None = None,
    ) -> ReplayResult:
        """Drive *arrivals* through the function, absorbing failures.

        With a *retry* policy, attempts whose status the policy marks
        retryable are re-scheduled at ``completion + backoff`` on the
        trace timeline; a request that fails its final allowed attempt is
        captured as a :class:`~repro.platform.retry.DeadLetter`.  With a
        *fallback* manager (for this function), trigger errors are served
        by the original function and counted against the manager's
        breaker — which may un-trim the primary mid-replay.

        With a *checkpoint*, the full replay state (platform, warm pool,
        retry timeline, accumulated result) is snapshotted every
        ``checkpoint.every`` served attempts; passing a loaded snapshot
        back as *resume_state* continues exactly where the snapshot was
        taken, byte-identical to an uninterrupted run.  Checkpointing
        assumes this replayer serves exactly one function per replayer
        (the fleet layout) and does not compose with *fallback* — breaker
        state is not snapshotted.
        """
        # Linear monotonicity scan — sorting a million-arrival copy just
        # to compare it costs more than the check is worth.
        previous = float("-inf")
        for arrival_time in arrivals:
            if arrival_time < previous:
                raise PlatformError("arrivals must be sorted")
            previous = arrival_time
        function = self.emulator.function(function_name)
        fallback_function: DeployedFunction | None = None
        if fallback is not None:
            if fallback.emulator is not self.emulator:
                raise PlatformError("fallback manager is bound to a different emulator")
            fallback_function = self.emulator.function(fallback.fallback)
        session = retry.session() if retry is not None else None
        recorder = get_recorder()

        if (checkpoint is not None or resume_state is not None) and (
            fallback is not None
        ):
            raise CheckpointError(
                "checkpointed replay does not compose with fallback managers"
            )

        result = ReplayResult(arrivals=len(arrivals))
        start_index = 0
        heap: list[tuple[float, int, int]] | None = None
        failed_attempts: dict[int, list[InvocationRecord]] = {}
        if resume_state is not None:
            start_index, heap, failed_attempts = self._restore_state(
                function, arrivals, session, result, resume_state
            )

        with recorder.span(
            "replay.run", label=function_name, arrivals=len(arrivals)
        ) as span:
            if session is None and fallback is None:
                # No retry timeline and no fallback detours: every arrival
                # is exactly one attempt served in order, so skip the
                # pending-attempt heap entirely.
                serve = self._serve_attempt
                requests_append = result.requests.append
                for index in range(start_index, len(arrivals)):
                    arrival = arrivals[index]
                    record, completion = serve(function, arrival, event, context)
                    result.attempts += 1
                    if not record.billed:
                        result.throttled += 1
                    requests_append(
                        ReplayedRequest(
                            arrival=arrival,
                            completion=completion,
                            record=record,
                        )
                    )
                    if checkpoint is not None and checkpoint.tick():
                        checkpoint.write(
                            self._snapshot_state(
                                function, result, None, index + 1, None, None
                            )
                        )
                return self._finish(result, recorder, span)

            if heap is None:
                # (time, seq, attempt): initial arrivals plus retry
                # re-drives.  Re-drives always land after the attempt that
                # spawned them, so pops come out in non-decreasing time
                # order and the warm-instance bookkeeping stays valid.
                heap = [(t, seq, 1) for seq, t in enumerate(arrivals)]
                heapq.heapify(heap)

            while heap:
                t, seq, attempt = heapq.heappop(heap)
                arrival = arrivals[seq]
                record, completion = self._serve_attempt(function, t, event, context)
                result.attempts += 1
                if not record.billed:
                    result.throttled += 1

                if (
                    fallback is not None
                    and fallback.primary == function_name
                    and fallback.is_trigger(record)
                ):
                    # The trimmed bundle is missing code this input needs:
                    # pay the wrapper detour, serve the original, feed the
                    # breaker (which may un-trim the primary for everyone).
                    fallback.record_trigger(t)
                    fb_record, fb_completion = self._serve_attempt(
                        fallback_function,
                        completion + SETUP_OVERHEAD_S,
                        event,
                        context,
                    )
                    if fb_record.ok:
                        fallback.recovered += 1
                    result.attempts += 1
                    result.fallbacks += 1
                    failed_attempts.pop(seq, None)
                    result.requests.append(
                        ReplayedRequest(
                            arrival=arrival,
                            completion=fb_completion,
                            record=fb_record,
                            attempt=attempt,
                            used_fallback=True,
                        )
                    )
                elif record.ok or session is None:
                    failed_attempts.pop(seq, None)
                    result.requests.append(
                        ReplayedRequest(
                            arrival=arrival,
                            completion=completion,
                            record=record,
                            attempt=attempt,
                        )
                    )
                else:
                    history = failed_attempts.setdefault(seq, [])
                    history.append(record)
                    if session.should_retry(record, attempt):
                        delay = session.next_delay_s(attempt)
                        heapq.heappush(heap, (completion + delay, seq, attempt + 1))
                        result.retries += 1
                    else:
                        failed_attempts.pop(seq, None)
                        result.dead_letters.append(
                            DeadLetter(
                                function=function_name,
                                arrival=arrival,
                                attempts=tuple(history),
                            )
                        )

                if checkpoint is not None and checkpoint.tick():
                    checkpoint.write(
                        self._snapshot_state(
                            function, result, session, None, heap, failed_attempts
                        )
                    )

            return self._finish(result, recorder, span)

    # -- checkpointing -----------------------------------------------------

    def _snapshot_state(
        self,
        function: DeployedFunction,
        result: ReplayResult,
        session,
        cursor: int | None,
        heap: list[tuple[float, int, int]] | None,
        failed_attempts: dict[int, list[InvocationRecord]] | None,
    ) -> dict:
        """Everything needed to resume this replay, as one JSON-safe dict.

        Taken at a loop boundary: no attempt is in flight, the emulator's
        pending-cold stash is consumed, and the log's spill offset marks
        exactly the rows already durable.
        """
        name = function.name
        busy = self._busy.get(name, [])
        idle = self._idle.get(name, [])
        instances = []
        seen: set[str] = set()
        # Owned instances first (list order is behaviour: the cold-start
        # recovery check reads ``function.instances[-1]``), then any pool
        # entry that was already dropped from the owner list but still
        # sits in the busy heap / idle stack awaiting lazy discard.
        for inst in function.instances:
            seen.add(inst.instance_id)
            instances.append(self._instance_state(inst, owned=True))
        for _, _, inst in busy:
            if inst.instance_id not in seen:
                seen.add(inst.instance_id)
                instances.append(self._instance_state(inst, owned=False))
        for _, inst in idle:
            if inst.instance_id not in seen:
                seen.add(inst.instance_id)
                instances.append(self._instance_state(inst, owned=False))
        hosts = self.emulator.hosts
        return {
            "engine": "reference",
            "function": name,
            "arrivals": result.arrivals,
            "mode": "fast" if session is None else "retry",
            "cursor": cursor,
            "heap": [[t, seq, attempt] for t, seq, attempt in heap]
            if heap is not None
            else None,
            "failed": {
                str(seq): [record.to_dict() for record in records]
                for seq, records in failed_attempts.items()
            }
            if failed_attempts is not None
            else None,
            "session": session.snapshot() if session is not None else None,
            "platform": snapshot_platform_state(self.emulator, function),
            "hosts": hosts.snapshot() if hosts is not None else None,
            "instances": instances,
            "pool": {
                "busy": [[until, seq, inst.instance_id] for until, seq, inst in busy],
                "idle": [[freed_at, inst.instance_id] for freed_at, inst in idle],
                "seq": self._seq.value,
                "adopted": name in self._idle,
            },
            "result": {
                "attempts": result.attempts,
                "retries": result.retries,
                "throttled": result.throttled,
                "fallbacks": result.fallbacks,
                "requests": [
                    [r.arrival, r.completion, r.attempt, r.record.to_dict()]
                    for r in result.requests
                ],
                "dead_letters": [dl.to_dict() for dl in result.dead_letters],
            },
        }

    @staticmethod
    def _instance_state(instance: FunctionInstance, *, owned: bool) -> dict:
        app = instance.app
        meter = app.meter
        return {
            "instance_id": instance.instance_id,
            "owned": owned,
            "created_at": instance.created_at,
            "last_used_at": instance.last_used_at,
            "invocations": instance.invocations,
            "alive": instance.alive,
            "host_id": instance.host_id,
            "meter": {
                "time_s": meter._time_s,
                "live_mb": meter.ledger._live_mb,
                "peak_mb": meter.ledger._peak_mb,
                "allocations": dict(meter.ledger._allocations),
                "init_time_s": app.init_time_s,
                "init_memory_mb": app.init_memory_mb,
            }
            if instance.alive
            else None,
        }

    def _restore_state(
        self,
        function: DeployedFunction,
        arrivals: list[float],
        session,
        result: ReplayResult,
        state: dict,
    ) -> tuple[int, list[tuple[float, int, int]] | None, dict]:
        """Adopt a :meth:`_snapshot_state` dict; returns the loop cursor."""
        if state.get("engine") != "reference":
            raise CheckpointError(
                f"checkpoint was written by the {state.get('engine')!r} engine; "
                "cannot resume with the reference TraceReplayer"
            )
        if state.get("function") != function.name:
            raise CheckpointError(
                f"checkpoint is for {state.get('function')!r}, "
                f"not {function.name!r}"
            )
        if state.get("arrivals") != len(arrivals):
            raise CheckpointError(
                f"checkpoint covers {state.get('arrivals')} arrivals but the "
                f"trace has {len(arrivals)}: trace changed since the snapshot"
            )
        mode = "fast" if session is None else "retry"
        if state.get("mode") != mode:
            raise CheckpointError(
                "retry configuration changed since the checkpoint was written"
            )
        emulator = self.emulator
        result.reexecuted = restore_platform_state(
            emulator, function, state["platform"]
        )

        by_id: dict[str, FunctionInstance] = {}
        owners: dict[str, list | None] = {}
        function.instances.clear()
        for item in state["instances"]:
            instance = self._instance_from_state(function, item)
            by_id[instance.instance_id] = instance
            if item["owned"]:
                function.instances.append(instance)
                owners[instance.instance_id] = function.instances
            else:
                owners[instance.instance_id] = None

        hosts = emulator.hosts
        if hosts is not None:
            if state["hosts"] is None:
                raise CheckpointError(
                    "checkpoint has no host-pool state but a host pool is "
                    "configured"
                )
            hosts.restore(state["hosts"], by_id, owners)
        elif state["hosts"] is not None:
            raise CheckpointError(
                "checkpoint carries host-pool state but no host pool is "
                "configured"
            )

        pool = state["pool"]
        name = function.name
        self._seq.value = int(pool["seq"])
        busy = [
            (float(until), int(seq), by_id[iid]) for until, seq, iid in pool["busy"]
        ]
        heapq.heapify(busy)
        self._busy[name] = busy
        if pool["adopted"]:
            # Pre-seeding the idle stack (even empty) suppresses the lazy
            # re-adoption of ``function.instances`` in _acquire_warm.
            self._idle[name] = [
                (float(freed_at), by_id[iid]) for freed_at, iid in pool["idle"]
            ]

        res = state["result"]
        result.attempts = int(res["attempts"])
        result.retries = int(res["retries"])
        result.throttled = int(res["throttled"])
        result.fallbacks = int(res["fallbacks"])
        result.requests = [
            ReplayedRequest(
                arrival=float(arrival),
                completion=float(completion),
                record=InvocationRecord.from_dict(record),
                attempt=int(attempt),
            )
            for arrival, completion, attempt, record in res["requests"]
        ]
        result.dead_letters = [
            DeadLetter(
                function=item["function"],
                arrival=float(item["arrival"]),
                attempts=tuple(
                    InvocationRecord.from_dict(record)
                    for record in item["attempts"]
                ),
            )
            for item in res["dead_letters"]
        ]

        if session is not None:
            session.restore(state["session"])
        failed = {
            int(seq): [InvocationRecord.from_dict(record) for record in records]
            for seq, records in (state["failed"] or {}).items()
        }
        start_index = int(state["cursor"]) if state["cursor"] is not None else 0
        heap = None
        if state["heap"] is not None:
            heap = [(float(t), int(s), int(a)) for t, s, a in state["heap"]]
            heapq.heapify(heap)
        return start_index, heap, failed

    def _instance_from_state(
        self, function: DeployedFunction, item: dict
    ) -> FunctionInstance:
        """Rebuild one warm (or lazily-discarded dead) instance.

        Alive instances re-run Function Initialization for real — handlers
        are assumed stateless across invocations, the repo-wide serverless
        contract — and then have their metered state pinned back to the
        snapshot so every subsequent charge continues bit-exactly.  Dead
        instances (awaiting lazy discard in the pool) skip the re-init.
        """
        instance = FunctionInstance(
            function.name, function.bundle, float(item["created_at"])
        )
        instance.instance_id = item["instance_id"]
        instance.last_used_at = float(item["last_used_at"])
        instance.invocations = int(item["invocations"])
        instance.host_id = item["host_id"]
        if item["alive"]:
            instance.app.load()
            if instance.app.init_error is not None:
                raise CheckpointError(
                    f"{instance.instance_id}: re-initialization failed on "
                    f"resume: {instance.app.init_error}"
                )
            meter_state = item["meter"]
            meter = instance.app.meter
            meter._time_s = float(meter_state["time_s"])
            meter.ledger._allocations = {
                label: float(mb)
                for label, mb in meter_state["allocations"].items()
            }
            meter.ledger._live_mb = float(meter_state["live_mb"])
            meter.ledger._peak_mb = float(meter_state["peak_mb"])
            instance.app._init_time_s = float(meter_state["init_time_s"])
            instance.app._init_memory_mb = float(meter_state["init_memory_mb"])
        else:
            instance.alive = False
        return instance

    def _finish(self, result: ReplayResult, recorder, span) -> ReplayResult:
        """Publish run-level counters once a replay's serving loop is done."""
        # Publish emulator counters batched on the disabled-recorder
        # fast path before reporting the replay's own aggregates.
        self.emulator.flush_obs()
        recorder.counter_add("replay.requests", len(result.requests))
        recorder.counter_add("replay.cold_starts", result.cold_starts)
        recorder.counter_add("replay.warm_starts", result.warm_starts)
        recorder.counter_add("replay.cost_usd", result.total_cost)
        recorder.gauge_max("replay.peak_concurrency", result.peak_concurrency)
        if result.retries:
            recorder.counter_add("replay.retries", result.retries)
        if result.throttled:
            recorder.counter_add("replay.throttled", result.throttled)
        if result.fallbacks:
            recorder.counter_add("replay.fallbacks", result.fallbacks)
        if result.dead_letters:
            recorder.counter_add("replay.dead_letters", len(result.dead_letters))
        if span is not None:
            span.set_attr("cold_starts", result.cold_starts)
            span.set_attr("warm_starts", result.warm_starts)
            span.set_attr("peak_concurrency", result.peak_concurrency)
            span.set_attr("cost_usd", round(result.total_cost, 9))
            span.set_attr("attempts", result.attempts)
            span.set_attr("retries", result.retries)
            span.set_attr("dead_letters", len(result.dead_letters))
        return result

    def _serve_attempt(
        self,
        function: DeployedFunction,
        arrival: float,
        event: Any,
        context: Any,
    ) -> tuple[InvocationRecord, float]:
        """Serve one attempt at trace time *arrival*; log/bill/observe it."""
        emulator = self.emulator
        hosts = emulator.hosts
        if hosts is not None:
            # Fire host faults due by this arrival before any serving
            # decision — identical ordering in the kernel replayer keeps
            # the engines byte-for-byte interchangeable.
            hosts.advance(arrival)
        instance: FunctionInstance | None = None
        if emulator.faults is not None and emulator.faults.throttled(
            function.name, arrival
        ):
            record = emulator._throttle_record(function)
        else:
            instance = self._acquire_warm(function, arrival)
            if instance is not None:
                record = self._serve_warm(function, instance, event, context, arrival)
            else:
                placement = (
                    hosts.admit(function.name, arrival, memory_mb=function.memory_mb)
                    if hosts is not None
                    else None
                )
                if hosts is not None and placement is None:
                    # No host can take a new instance and nothing idle is
                    # left to evict: the request bounces as a (retryable,
                    # unbilled) capacity throttle.
                    record = emulator._throttle_record(
                        function, error="CapacityExhausted"
                    )
                else:
                    record = emulator._cold_start(
                        function, event, context, arrival=arrival, placement=placement
                    )
                    # Recover the instance the cold start created (it is the
                    # newest in the list) — unless it crashed before joining.
                    if (
                        function.instances
                        and function.instances[-1].instance_id == record.instance_id
                    ):
                        instance = function.instances[-1]
        # Trace-time accounting, not the forward-only virtual clock:
        # windows and concurrency follow the arrivals.  Replay does not
        # re-emit per-record obs counters (it reports in aggregate).
        emulator._record_invocation(record, arrival=arrival, emit_obs=False)
        completion = arrival + record.e2e_s
        if hosts is not None and instance is not None:
            # True the reservation up to the measured peak (may evict idle
            # neighbours under pressure) and remember the footprint for
            # future placements of this function.
            hosts.adjust(instance.instance_id, record.peak_memory_mb, arrival)
            hosts.observe_footprint(function.name, record.peak_memory_mb)
        if instance is not None and instance.alive:
            # Still alive after serving (not OOM-killed / crashed): it is
            # busy until this request's trace-time completion.
            heapq.heappush(
                self._busy.setdefault(function.name, []),
                (completion, next(self._seq), instance),
            )
            if hosts is not None:
                hosts.record_use(instance.instance_id, completion)
        return record, completion

    def _acquire_warm(
        self, function: DeployedFunction, arrival: float
    ) -> FunctionInstance | None:
        """Pop a warm instance free at *arrival*, or None (cold start).

        MRU order: the most recently freed instance serves first, which
        both matches container-reuse behaviour and lets one stale stack
        top expire the whole stack at once.
        """
        name = function.name
        idle = self._idle.get(name)
        if idle is None:
            idle = self._idle[name] = []
            # Adopt instances that predate this replayer (e.g. warmed by
            # direct invokes) as idle-as-of-now.
            for existing in function.instances:
                if existing.alive:
                    idle.append((arrival, existing))
        busy = self._busy.get(name)
        if busy:
            # Everything that completed by this arrival becomes idle; heap
            # order makes the pushes monotone in freed-at.
            while busy and busy[0][0] <= arrival:
                freed_at, _, freed = heapq.heappop(busy)
                idle.append((freed_at, freed))
        keep_alive = self.emulator.keep_alive_s
        while idle:
            freed_at, candidate = idle[-1]
            if arrival - freed_at > keep_alive:
                # The freshest idle instance has already expired, so every
                # older one beneath it has too: drop the whole stack.  With
                # a host pool attached, expiry actually frees host memory:
                # pool-placed instances are shut down and their slots
                # released (retire guards ``alive``, so an instance the
                # pool already evicted is never double-killed).
                hosts = self.emulator.hosts
                if hosts is not None:
                    for _, stale in idle:
                        hosts.retire(stale.instance_id)
                idle.clear()
                return None
            idle.pop()
            if candidate.alive:  # else killed or un-trimmed: discard
                return candidate
        return None

    def _serve_warm(
        self,
        function: DeployedFunction,
        instance: FunctionInstance,
        event: Any,
        context: Any,
        arrival: float | None = None,
    ) -> InvocationRecord:
        # Float zeros: warm records must carry the same field types as
        # cold ones, or exports that serialize the record object directly
        # (dead letters) differ byte-wise from the kernel engine's.
        return self.emulator._run(
            function,
            instance,
            event,
            context,
            StartType.WARM,
            0.0,
            0.0,
            0.0,
            0.0,
            arrival=arrival,
        )
