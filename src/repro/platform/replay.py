"""Trace replay on the emulator: bursty arrivals against real instances.

The analytic :class:`~repro.traces.simulator.TraceSimulator` prices traces
without executing anything.  :class:`TraceReplayer` instead replays an
arrival sequence against the *real* emulator — every invocation actually
imports and runs the application — so bursty workloads exercise true
instance semantics: a request arriving while all warm instances are busy
spills onto a new instance and pays a full cold start (Section 2.1's
"part of a burst that exceeds the capacity of the currently deployed
instances").

Requests overlap in trace time, but the emulator executes them one at a
time; the replayer therefore keeps its own trace-time bookkeeping (per-
instance busy-until and last-served times) instead of the global virtual
clock, which only ever moves forward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import PlatformError
from repro.obs import get_recorder
from repro.platform.emulator import DeployedFunction, LambdaEmulator
from repro.platform.instance import FunctionInstance
from repro.platform.logs import InvocationRecord, StartType

__all__ = ["ReplayResult", "ReplayedRequest", "TraceReplayer"]


@dataclass(frozen=True)
class ReplayedRequest:
    """One arrival's outcome in trace time."""

    arrival: float
    completion: float
    record: InvocationRecord

    @property
    def is_cold(self) -> bool:
        return self.record.is_cold

    @property
    def e2e_s(self) -> float:
        return self.completion - self.arrival


@dataclass
class ReplayResult:
    """Outcome of replaying one arrival sequence."""

    requests: list[ReplayedRequest] = field(default_factory=list)

    @property
    def cold_starts(self) -> int:
        return sum(1 for r in self.requests if r.is_cold)

    @property
    def warm_starts(self) -> int:
        return len(self.requests) - self.cold_starts

    @property
    def total_cost(self) -> float:
        return sum(r.record.cost_usd for r in self.requests)

    @property
    def peak_concurrency(self) -> int:
        """Maximum number of simultaneously in-flight requests."""
        edges: list[tuple[float, int]] = []
        for request in self.requests:
            edges.append((request.arrival, 1))
            edges.append((request.completion, -1))
        edges.sort()
        peak = current = 0
        for _, delta in edges:
            current += delta
            peak = max(peak, current)
        return peak


class TraceReplayer:
    """Replays timestamped arrivals against a deployed function."""

    def __init__(self, emulator: LambdaEmulator):
        self.emulator = emulator
        # trace-time bookkeeping, independent of the global virtual clock
        self._busy_until: dict[str, float] = {}
        self._last_served: dict[str, float] = {}

    def replay(
        self,
        function_name: str,
        arrivals: list[float],
        event: Any,
        context: Any = None,
    ) -> ReplayResult:
        if sorted(arrivals) != list(arrivals):
            raise PlatformError("arrivals must be sorted")
        function = self.emulator.function(function_name)
        recorder = get_recorder()

        result = ReplayResult()
        with recorder.span(
            "replay.run", label=function_name, arrivals=len(arrivals)
        ) as span:
            for arrival in arrivals:
                instance = self._free_warm_instance(function, arrival)
                if instance is not None:
                    record = self._serve_warm(function, instance, event, context)
                else:
                    record = self.emulator._cold_start(function, event, context)
                    self.emulator.log.append(record)
                    self.emulator.ledger.charge_invocation(
                        function_name, record.cost_usd, cold=True
                    )
                if self.emulator.telemetry is not None:
                    # Trace-time accounting, not the forward-only virtual
                    # clock: windows and concurrency follow the arrivals.
                    self.emulator.telemetry.observe(record, arrival=arrival)
                completion = arrival + record.e2e_s
                self._busy_until[record.instance_id] = completion
                self._last_served[record.instance_id] = completion
                result.requests.append(
                    ReplayedRequest(
                        arrival=arrival, completion=completion, record=record
                    )
                )
            recorder.counter_add("replay.requests", len(result.requests))
            recorder.counter_add("replay.cold_starts", result.cold_starts)
            recorder.counter_add("replay.warm_starts", result.warm_starts)
            recorder.counter_add("replay.cost_usd", result.total_cost)
            recorder.gauge_max("replay.peak_concurrency", result.peak_concurrency)
            if span is not None:
                span.set_attr("cold_starts", result.cold_starts)
                span.set_attr("warm_starts", result.warm_starts)
                span.set_attr("peak_concurrency", result.peak_concurrency)
                span.set_attr("cost_usd", round(result.total_cost, 9))
        return result

    def _free_warm_instance(
        self, function: DeployedFunction, arrival: float
    ) -> FunctionInstance | None:
        keep_alive = self.emulator.keep_alive_s
        for instance in function.instances:
            if not instance.app.loaded:
                continue
            if self._busy_until.get(instance.instance_id, 0.0) > arrival:
                continue  # still serving an earlier overlapping request
            idle_for = arrival - self._last_served.get(
                instance.instance_id, arrival
            )
            if idle_for <= keep_alive:
                return instance
        return None

    def _serve_warm(
        self,
        function: DeployedFunction,
        instance: FunctionInstance,
        event: Any,
        context: Any,
    ) -> InvocationRecord:
        emulator = self.emulator
        record = emulator._run(
            function, instance, event, context, StartType.WARM, 0, 0, 0, 0
        )
        emulator.log.append(record)
        emulator.ledger.charge_invocation(function.name, record.cost_usd, cold=False)
        return record
