"""Declarative SLO rules and breach detection over telemetry windows.

SLAM (CLOUD'22) argues serverless optimization should be driven by
SLO-level percentiles rather than means; λ-trim's whole premise is that
debloating moves the *cold-start tail*.  This module turns that into an
operational check: an :class:`SloRule` names a windowed metric (e.g.
``cold_e2e_p99`` or ``cost_per_1k``) and an upper bound, and
:class:`SloPolicy` evaluates every rule against every finalized
:class:`~repro.platform.telemetry.WindowRollup`.  A debloat regression
then surfaces as a *breach alarm* — an :class:`SloBreach` plus a
``slo.breach`` observability event — instead of a diff someone has to
eyeball.

All supported metrics are "lower is better", so a rule breaches when the
windowed value exceeds its threshold.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.errors import PlatformError

__all__ = ["SloRule", "SloBreach", "SloPolicy", "FLEET"]

#: Pseudo-function name for fleet-wide (cross-function) windows.
FLEET = "*"

#: Scalar rollup attributes a rule may target directly.
_SCALAR_METRICS = frozenset({
    "invocations",
    "cold_starts",
    "warm_starts",
    "errors",
    "cost_usd",
    "billed_s_sum",
    "concurrency_peak",
    "evictions",
    "host_losses",
    "host_util_peak",
    "cold_start_rate",
    "error_rate",
    "cost_per_1k",
    "mean_e2e_s",
})

#: ``<histogram>_p<percentile>`` metrics, e.g. ``cold_e2e_p99``.
_PERCENTILE_RE = re.compile(
    r"^(?P<hist>e2e|cold_e2e|billed)_p(?P<pct>50|90|95|99|999)$"
)

_PCT_TO_Q = {"50": 0.50, "90": 0.90, "95": 0.95, "99": 0.99, "999": 0.999}


def metric_value(rollup: Any, metric: str) -> float:
    """Extract *metric* from a window rollup; raises on unknown names."""
    if metric in _SCALAR_METRICS:
        return float(getattr(rollup, metric))
    match = _PERCENTILE_RE.match(metric)
    if match is None:
        raise PlatformError(
            f"unknown SLO metric {metric!r} (scalars: "
            f"{', '.join(sorted(_SCALAR_METRICS))}; percentiles: "
            f"e2e_pNN, cold_e2e_pNN, billed_pNN for NN in 50/90/95/99/999)"
        )
    histogram = getattr(rollup, match.group("hist"))
    return histogram.quantile(_PCT_TO_Q[match.group("pct")])


@dataclass(frozen=True)
class SloRule:
    """One service-level objective: ``metric <= threshold`` per window.

    ``function`` scopes the rule to one function's windows or, with the
    default :data:`FLEET`, to the fleet-wide rollup.  Windows with fewer
    than ``min_invocations`` records are skipped so a single stray cold
    start in an idle window cannot page anyone.
    """

    name: str
    metric: str
    threshold: float
    function: str = FLEET
    min_invocations: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise PlatformError(
                f"SLO {self.name!r}: threshold must be non-negative, "
                f"got {self.threshold}"
            )
        if self.min_invocations < 1:
            raise PlatformError(f"SLO {self.name!r}: min_invocations must be >= 1")
        # Validate the metric name eagerly: a typo should fail at rule
        # construction, not silently never alarm.
        if self.metric not in _SCALAR_METRICS and not _PERCENTILE_RE.match(self.metric):
            metric_value(object(), self.metric)  # raises with the full message

    def applies_to(self, rollup: Any) -> bool:
        return (
            rollup.function == self.function
            and rollup.invocations >= self.min_invocations
        )

    def evaluate(self, rollup: Any) -> "SloBreach | None":
        """Check one window; returns a breach or ``None`` (green)."""
        if not self.applies_to(rollup):
            return None
        value = metric_value(rollup, self.metric)
        if value <= self.threshold:
            return None
        return SloBreach(
            rule=self.name,
            metric=self.metric,
            function=rollup.function,
            window_start_s=rollup.start_s,
            window_end_s=rollup.end_s,
            value=value,
            threshold=self.threshold,
            exemplars=tuple(
                ref for _, ref in getattr(rollup, "exemplars", ()) or ()
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "threshold": self.threshold,
            "function": self.function,
            "min_invocations": self.min_invocations,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SloRule":
        return cls(
            name=data["name"],
            metric=data["metric"],
            threshold=float(data["threshold"]),
            function=data.get("function", FLEET),
            min_invocations=int(data.get("min_invocations", 1)),
            description=data.get("description", ""),
        )


@dataclass(frozen=True)
class SloBreach:
    """One rule exceeding its threshold in one window."""

    rule: str
    metric: str
    function: str
    window_start_s: float
    window_end_s: float
    value: float
    threshold: float
    #: Worst offending invocations of the breached window as
    #: ``"function/request-id"`` references, slowest first — the handle
    #: the dashboard's drill-down panel resolves to cost profiles.
    exemplars: tuple[str, ...] = ()

    @property
    def excess_ratio(self) -> float:
        """How far over the line: ``value / threshold`` (inf at zero)."""
        if self.threshold == 0:
            return float("inf")
        return self.value / self.threshold

    def describe(self) -> str:
        scope = "fleet" if self.function == FLEET else self.function
        return (
            f"BREACH {self.rule} [{scope}] window "
            f"{self.window_start_s:.0f}-{self.window_end_s:.0f}s: "
            f"{self.metric} = {self.value:.4g} > {self.threshold:.4g}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "function": self.function,
            "window_start_s": self.window_start_s,
            "window_end_s": self.window_end_s,
            "value": self.value,
            "threshold": self.threshold,
            "exemplars": list(self.exemplars),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SloBreach":
        return cls(
            rule=data["rule"],
            metric=data["metric"],
            function=data["function"],
            window_start_s=float(data["window_start_s"]),
            window_end_s=float(data["window_end_s"]),
            value=float(data["value"]),
            threshold=float(data["threshold"]),
            exemplars=tuple(str(ref) for ref in data.get("exemplars", ())),
        )


@dataclass
class SloPolicy:
    """A named set of rules evaluated together against each window."""

    rules: list[SloRule] = field(default_factory=list)

    def add(self, rule: SloRule) -> "SloPolicy":
        self.rules.append(rule)
        return self

    def evaluate_window(self, rollup: Any) -> list[SloBreach]:
        breaches = []
        for rule in self.rules:
            breach = rule.evaluate(rollup)
            if breach is not None:
                breaches.append(breach)
        return breaches

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)
