"""The replay kernel: template-capture fast path for trace replay.

:class:`~repro.platform.replay.TraceReplayer` replays every arrival by
*really* importing and executing the application under the virtual
meter.  That is the reference semantics, but at fleet scale it is almost
all redundant work: instances are isolated (each gets private copies of
its modules via ``isolated_imports``) and the metering is deterministic,
so every cold start of a function replays the same charge sequence, and
every warm invocation from the second onwards replays the same charge
*tape*.  :class:`KernelReplayer` exploits exactly that:

1. **Capture.**  The first cold start and the first two warm
   invocations of each ``(bundle, event)`` pair run for real, recording
   the meter's charge sequence (per-event virtual times and memory
   deltas), the handler's return value, and the error outcome.
2. **Verify.**  The two warm tapes must match exactly — times, memory,
   value, error — and the memory deltas must account for the meter's
   live footprint (a handler that *frees* memory is not replayable from
   deltas).  Any mismatch disables the template: the function simply
   keeps running on the reference path, still byte-identical.
3. **Synthesize.**  Once verified, further invocations never touch an
   interpreter: the kernel replays the captured charges as the same
   sequence of float additions against a per-instance simulated meter
   (running time, live MB, peak MB), feeds the decomposed fields
   straight into the columnar :class:`~repro.platform.logs.ExecutionLog`
   (:meth:`~repro.platform.logs.ExecutionLog.append_row`), the billing
   ledger, and the telemetry sink's row path — no
   :class:`~repro.platform.logs.InvocationRecord` objects, no enum
   lookups, no dict churn.

Because ``x + 0.0 == x`` and the charge replay performs the *same
additions in the same order* as the real meter, every derived float —
``exec_duration_s`` (a difference of running sums, so it drifts across
an instance's lifetime!), ``e2e_s``, billed durations, costs — comes out
bit-identical to the reference engine.  Clock advancement, fault-RNG
draw order, request-id consumption, and warm-pool decisions (MRU idle
stack + busy heap, cloned from ``TraceReplayer``) are replicated
exactly, so logs, ledgers, telemetry, and dead letters are
byte-identical at any worker count.  The property tests in
``tests/platform/test_kernel.py`` pin this down across seeds.

Status/billing math that is per-run rather than per-invocation — the
peak-concurrency sweep — is vectorized with numpy when available
(:func:`peak_concurrency`); the pure-Python two-pointer sweep is the
reference and provably computes the same maximum.

What falls back to the reference engine: SnapStart functions, non-JSON
events, a non-``None`` context, fallback managers, and any workload
whose capture fails verification.  The host layer
(:mod:`repro.platform.hosts`) never invalidates a template — placement,
eviction, and host loss operate on pool state *outside* the captured
meter tapes — so host chaos runs on the kernel path with the same pool
hooks, in the same order, as the reference engine; if a workload's
template is invalid for any of the reasons above, the usual reference
fallback carries the host semantics unchanged.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import CheckpointError, PlatformError
from repro.obs import get_recorder
from repro.platform.checkpoint import (
    ReplayCheckpoint,
    SerialCounter,
    restore_platform_state,
    snapshot_platform_state,
)
from repro.platform.emulator import DeployedFunction, LambdaEmulator
from repro.platform.instance import FunctionInstance
from repro.platform.logs import (
    _START_TYPE_INDEX,
    _START_TYPES,
    _STATUS_INDEX,
    _STATUS_TYPES,
    InvocationRecord,
    InvocationStatus,
    StartType,
)
from repro.platform.retry import DeadLetter, RetryPolicy
from repro.obs.attribution import attribute_cold_start
from repro.vm import aggregate_charges

try:  # numpy is an optional accelerator; pure Python is the reference
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via vectorized=False
    _np = None

__all__ = ["KernelReplayer", "KernelResult", "TemplateStore", "peak_concurrency"]

_COLD = _START_TYPE_INDEX[StartType.COLD]
_WARM = _START_TYPE_INDEX[StartType.WARM]
_THROTTLED_START = _START_TYPE_INDEX[StartType.THROTTLED]
_S_SUCCESS = _STATUS_INDEX[InvocationStatus.SUCCESS]
_S_ERROR = _STATUS_INDEX[InvocationStatus.ERROR]
_S_TIMEOUT = _STATUS_INDEX[InvocationStatus.TIMEOUT]
_S_OOM = _STATUS_INDEX[InvocationStatus.OOM]
_S_THROTTLED = _STATUS_INDEX[InvocationStatus.THROTTLED]
_S_CRASHED = _STATUS_INDEX[InvocationStatus.CRASHED]
_STATUS_VALUES = tuple(s.value for s in _STATUS_TYPES)
_INF = float("inf")


def peak_concurrency(
    arrivals: Sequence[float],
    completions: Sequence[float],
    *,
    vectorized: bool | None = None,
) -> int:
    """Maximum number of simultaneously in-flight requests.

    Equivalent to the reference edge sweep (sort ``(t, +1)``/``(t, -1)``
    edges with departures before arrivals at ties, track the running
    depth): with both arrays sorted, the depth at the i-th arrival is
    ``i + 1 - |{completions <= arrival}|``, and the maximum over
    arrivals is the peak.  ``vectorized=None`` uses numpy when
    installed; ``False`` forces the pure-Python reference sweep.
    """
    n = len(arrivals)
    if n == 0:
        return 0
    use_numpy = (_np is not None) if vectorized is None else vectorized
    if use_numpy:
        if _np is None:
            raise PlatformError("numpy is not available for vectorized=True")
        arr = _np.sort(_np.asarray(arrivals, dtype=float))
        comp = _np.sort(_np.asarray(completions, dtype=float))
        depths = _np.arange(1, n + 1) - _np.searchsorted(comp, arr, side="right")
        return int(depths.max())
    arr_sorted = sorted(arrivals)
    comp_sorted = sorted(completions)
    peak = 0
    j = 0
    for i, arrival in enumerate(arr_sorted):
        while j < n and comp_sorted[j] <= arrival:
            j += 1
        depth = i + 1 - j
        if depth > peak:
            peak = depth
    return peak


def _value_key(value: Any) -> Any:
    """Precompute the ExecutionLog interning key for a template value."""
    if value is None:
        return None
    try:
        hash(value)
    except TypeError:
        try:
            return json.dumps(value, sort_keys=True)
        except (TypeError, ValueError):
            return None
    return value


@dataclass
class _ColdTemplate:
    """Constants of a cold start: init phase plus the first invocation.

    Cold starts are position-independent — the instance meter always
    starts at zero, so every float here is a constant, not a tape.
    """

    init_s: float
    init_live: float
    init_peak: float
    #: Meter state after invocation #1 (seed state for the warm tape).
    post_t: float
    post_live: float
    post_peak: float
    exec1_s: float
    value: Any
    value_key: Any
    error_type: str | None
    #: Aggregated init-phase charge rows ``(label, time_s, memory_mb)``,
    #: captured once per template when dollar attribution is enabled —
    #: synthesized cold starts reuse them so profiles stay identical to
    #: the reference engine's without touching an interpreter.
    modules: tuple = ()


@dataclass
class _WarmTemplate:
    """The verified warm-invocation charge tape.

    ``times``/``mems`` are per-charge-event virtual seconds and MB
    deltas; replaying them as sequential additions against the
    instance's running meter state reproduces ``exec_duration_s`` (a
    difference of running sums) bit-for-bit, including its float drift
    across the instance's lifetime.
    """

    times: tuple[float, ...]
    mems: tuple[float, ...]
    has_mem: bool
    value: Any
    value_key: Any
    error_type: str | None


class _Entry:
    """Capture state for one ``(bundle root, event)`` pair."""

    __slots__ = ("cold", "warm", "candidate", "disabled", "drift")

    def __init__(self) -> None:
        self.cold: _ColdTemplate | None = None
        self.warm: _WarmTemplate | None = None
        #: First warm capture, awaiting confirmation by a second.
        self.candidate: tuple | None = None
        #: Set when captures disagree or memory frees make the tape
        #: unreplayable: this pair runs on the reference path forever.
        self.disabled = False
        #: Lazily built per-template drift tables, owned by the vector
        #: engine (:mod:`repro.platform.vector`); None until it runs.
        self.drift: Any = None

    @property
    def ready(self) -> bool:
        """Can cold starts be synthesized end to end?

        Requires the *warm* tape too: a synthesized instance has no real
        interpreter behind it, so it must never need a warm capture.
        """
        return self.cold is not None and self.warm is not None and not self.disabled


class TemplateStore:
    """Capture-once template cache, scoped to one replay shard/process.

    Deliberately *not* module-global: a bundle path may be rebuilt with
    different contents across calls, and a store that outlives the shard
    would serve stale templates.  The capture cost (one real cold start
    plus two real warm invocations per function) is paid once per shard.
    """

    def __init__(self) -> None:
        self._entries: dict[Any, _Entry] = {}

    def entry(self, key: Any) -> _Entry:
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _Entry()
        return entry

    @staticmethod
    def key_for(
        function: DeployedFunction, event: Any, context: Any
    ) -> tuple[str, str] | None:
        """The template cache key, or None if the kernel cannot serve.

        SnapStart re-checkpoints through the C/R simulator, a context
        object may carry behaviour, and a non-JSON event cannot be
        keyed — all three fall back to the reference engine.
        """
        if context is not None or function.snapstart:
            return None
        try:
            event_key = json.dumps(event, sort_keys=True)
        except (TypeError, ValueError):
            return None
        return (str(function.bundle.root), event_key)


class _Shadow:
    """A pool entry: simulated meter state, optionally backing a real
    instance (capture phase) or standing alone (synthesized).

    Lives in ``function.instances`` like a real instance so
    ``discard_instances`` and kill bookkeeping work unchanged.
    """

    __slots__ = (
        "instance_id",
        "alive",
        "t",
        "live",
        "peak",
        "invocations",
        "real",
        "container",
        "host_id",
    )

    def __init__(
        self,
        instance_id: str,
        t: float = 0.0,
        live: float = 0.0,
        peak: float = 0.0,
        real: FunctionInstance | None = None,
    ) -> None:
        self.instance_id = instance_id
        self.alive = True
        self.t = t
        self.live = live
        self.peak = peak
        self.invocations = 0
        self.real = real
        # Host the pool placed this shadow on (None without a host layer);
        # mirrors FunctionInstance.host_id so kernel and reference engines
        # carry identical placement state.
        self.host_id: str | None = None
        #: What actually sits in ``function.instances`` for this shadow —
        #: the shadow itself for kernel-created instances, the wrapped
        #: real instance for adopted ones.
        self.container: Any = self

    def is_warm(self, now: float, keep_alive_s: float) -> bool:
        # Direct emulator.invoke() between kernel replays is not a
        # supported mix; report not-warm so it cold-starts safely.
        return False

    def shutdown(self) -> None:
        self.alive = False
        if self.real is not None:
            self.real.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "captured" if self.real is not None else "synth"
        return f"_Shadow({self.instance_id}, {kind}, used {self.invocations}x)"


@dataclass
class KernelResult:
    """Aggregate outcome of a kernel replay.

    The counting twin of :class:`~repro.platform.replay.ReplayResult`:
    same totals, computed incrementally over final outcomes in the same
    order, without retaining per-request objects.
    """

    arrivals: int = 0
    requests: int = 0
    delivered: int = 0
    attempts: int = 0
    retries: int = 0
    throttled: int = 0
    fallbacks: int = 0
    cold_starts: int = 0
    warm_starts: int = 0
    total_cost: float = 0.0
    peak_concurrency: int = 0
    dead_letter_list: list[DeadLetter] = field(default_factory=list)
    #: Attempts re-served after a crash-resume because they fell past the
    #: last checkpoint's durable watermark (0 on uninterrupted runs).
    reexecuted: int = 0

    @property
    def dead_letters(self) -> int:
        return len(self.dead_letter_list)

    @property
    def lost(self) -> int:
        return self.arrivals - self.requests - len(self.dead_letter_list)


class KernelReplayer:
    """Replays one function's arrivals through the template kernel.

    Bound to a single function name per instance (the warm pool is
    per-function state).  Use :class:`~repro.platform.replay.
    TraceReplayer` when you need fallback managers or non-replayable
    workloads; :func:`~repro.platform.fleet.replay_fleet` picks the
    engine per function automatically.
    """

    def __init__(
        self,
        emulator: LambdaEmulator,
        store: TemplateStore | None = None,
        *,
        vectorized: bool | None = None,
    ) -> None:
        self.emulator = emulator
        self.store = store if store is not None else TemplateStore()
        self.vectorized = vectorized
        self._hosts = emulator.hosts
        # Warm-pool bookkeeping cloned from TraceReplayer: a heap of
        # (busy-until, seq, shadow) and a monotone MRU stack of
        # (freed-at, shadow); one stale top expires the whole stack.
        self._busy: list[tuple[float, int, _Shadow]] = []
        self._idle: list[tuple[float, _Shadow]] = []
        self._seq = SerialCounter()
        self._adopted = False
        self._name: str | None = None
        # Pricing caches keyed on exact float bits: the billed-duration
        # quantization collapses exec-time drift onto few values.
        self._clamp_cache: dict[int, int] = {}
        self._billed_cache: dict[float, float] = {}
        self._cost_cache: dict[tuple[float, int], float] = {}
        #: (module rows, include_exec) stashed by the cold paths for
        #: _emit to price; None outside a cold start or when attribution
        #: is off.
        self._cold_pending: tuple | None = None

    # -- driving -----------------------------------------------------------

    def replay(
        self,
        function_name: str,
        arrivals: list[float],
        event: Any,
        context: Any = None,
        *,
        retry: RetryPolicy | None = None,
        checkpoint: ReplayCheckpoint | None = None,
        resume_state: dict | None = None,
    ) -> KernelResult:
        """Drive *arrivals* through the function on the kernel path.

        Semantics — clock, faults, billing, retries, dead letters,
        telemetry — are byte-identical to
        :meth:`TraceReplayer.replay <repro.platform.replay.TraceReplayer
        .replay>` without a fallback manager.

        With a *checkpoint*, the full replay state is snapshotted every
        ``checkpoint.every`` served attempts once the template is ready
        (capture-phase attempts run real instances, which only the
        reference snapshot format covers — the kernel waits for
        synthesis before its first write).  Passing a loaded snapshot
        back as *resume_state* continues exactly where it was taken:
        the fresh shard's empty :class:`TemplateStore` is repopulated by
        re-capturing the (bundle, event) templates on a scratch instance
        outside the clock, and every pool shadow resumes as a pure
        synthesized meter.
        """
        previous = float("-inf")
        for arrival_time in arrivals:
            if arrival_time < previous:
                raise PlatformError("arrivals must be sorted")
            previous = arrival_time
        emulator = self.emulator
        function = emulator.function(function_name)
        key = TemplateStore.key_for(function, event, context)
        if key is None:
            raise PlatformError(
                f"kernel cannot replay {function_name!r}: snapstart, a "
                "context object, or a non-JSON event needs the reference "
                "engine"
            )
        if self._name is None:
            self._name = function_name
        elif self._name != function_name:
            raise PlatformError(
                "a KernelReplayer is bound to one function; create another"
            )

        self._function = function
        self._event = event
        self._context = context
        self._entry = self.store.entry(key)
        self._routing = emulator.routing_s
        instance_init_s, transmission_s = emulator.platform_overhead_s(function)
        self._overhead = (instance_init_s, transmission_s)
        self._overhead_sum = instance_init_s + transmission_s
        self._timeout_s = function.timeout_s
        self._memory_mb = function.memory_mb
        self._bill = emulator.ledger.bill_for(function_name)
        self._log = emulator.log
        self._sink = emulator.telemetry
        self._faults = emulator.faults
        self._hosts = emulator.hosts
        self._clock = emulator.clock
        self._pricing = emulator.pricing
        self._request_ids = emulator._request_ids
        self._attribution = emulator.attribution

        session = retry.session() if retry is not None else None
        recorder = get_recorder()
        result = KernelResult(arrivals=len(arrivals))
        arrival_times: list[float] = []
        completion_times: list[float] = []
        start_index = 0
        heap: list[tuple[float, int, int]] | None = None
        failed_attempts: dict[int, list[InvocationRecord]] = {}
        if resume_state is not None:
            start_index, heap, failed_attempts = self._restore_state(
                arrivals, session, result, arrival_times, completion_times,
                resume_state,
            )

        with recorder.span(
            "replay.run", label=function_name, arrivals=len(arrivals)
        ) as span:
            if session is None:
                self._run_fast(
                    arrivals, start_index, result, arrival_times,
                    completion_times, checkpoint,
                )
            else:
                self._replay_with_retries(
                    arrivals, session, result, arrival_times, completion_times,
                    checkpoint=checkpoint, heap=heap,
                    failed_attempts=failed_attempts,
                )

            emulator.flush_obs()
            result.peak_concurrency = peak_concurrency(
                arrival_times, completion_times, vectorized=self.vectorized
            )
            recorder.counter_add("replay.requests", result.requests)
            recorder.counter_add("replay.cold_starts", result.cold_starts)
            recorder.counter_add("replay.warm_starts", result.warm_starts)
            recorder.counter_add("replay.cost_usd", result.total_cost)
            recorder.gauge_max("replay.peak_concurrency", result.peak_concurrency)
            if result.retries:
                recorder.counter_add("replay.retries", result.retries)
            if result.throttled:
                recorder.counter_add("replay.throttled", result.throttled)
            if result.dead_letter_list:
                recorder.counter_add(
                    "replay.dead_letters", len(result.dead_letter_list)
                )
            if span is not None:
                span.set_attr("cold_starts", result.cold_starts)
                span.set_attr("warm_starts", result.warm_starts)
                span.set_attr("peak_concurrency", result.peak_concurrency)
                span.set_attr("cost_usd", round(result.total_cost, 9))
                span.set_attr("attempts", result.attempts)
                span.set_attr("retries", result.retries)
                span.set_attr("dead_letters", len(result.dead_letter_list))
        return result

    def _run_fast(
        self,
        arrivals: list[float],
        start_index: int,
        result: KernelResult,
        arrival_times: list[float],
        completion_times: list[float],
        checkpoint: ReplayCheckpoint | None,
    ) -> None:
        """The retry-free serve loop: one attempt per arrival, in order.

        Extracted so engine subclasses (the vector engine) can override
        just the loop while inheriting validation, binding, the retry
        timeline, and the finalization/accounting epilogue.
        """
        serve = self._serve
        for index in range(start_index, len(arrivals)):
            t = arrivals[index]
            status, start, completion, cost, _ = serve(t, False)
            result.attempts += 1
            if status == _S_THROTTLED:
                result.throttled += 1
            result.requests += 1
            if status == _S_SUCCESS:
                result.delivered += 1
            if start == _COLD:
                result.cold_starts += 1
            elif start == _WARM:
                result.warm_starts += 1
            result.total_cost += cost
            arrival_times.append(t)
            completion_times.append(completion)
            if (
                checkpoint is not None
                and checkpoint.tick()
                and self._entry.ready
            ):
                checkpoint.write(
                    self._snapshot_state(
                        result, None, index + 1, None, None,
                        arrival_times, completion_times,
                    )
                )

    def _replay_with_retries(
        self,
        arrivals: list[float],
        session,
        result: KernelResult,
        arrival_times: list[float],
        completion_times: list[float],
        *,
        checkpoint: ReplayCheckpoint | None = None,
        heap: list[tuple[float, int, int]] | None = None,
        failed_attempts: dict[int, list[InvocationRecord]] | None = None,
    ) -> None:
        """The retry timeline: a heap of pending attempts, as in the
        reference engine.  Failed attempts materialise real records (the
        retry policy and dead letters consume them); successes stay on
        the record-free fast path."""
        if heap is None:
            heap = [(t, seq, 1) for seq, t in enumerate(arrivals)]
            heapq.heapify(heap)
        if failed_attempts is None:
            failed_attempts = {}
        while heap:
            t, seq, attempt = heapq.heappop(heap)
            status, start, completion, cost, record = self._serve(t, True)
            result.attempts += 1
            if status == _S_THROTTLED:
                result.throttled += 1
            if status == _S_SUCCESS:
                failed_attempts.pop(seq, None)
                result.requests += 1
                result.delivered += 1
                if start == _COLD:
                    result.cold_starts += 1
                elif start == _WARM:
                    result.warm_starts += 1
                result.total_cost += cost
                arrival_times.append(arrivals[seq])
                completion_times.append(completion)
            else:
                history = failed_attempts.setdefault(seq, [])
                history.append(record)
                if session.should_retry(record, attempt):
                    delay = session.next_delay_s(attempt)
                    heapq.heappush(heap, (completion + delay, seq, attempt + 1))
                    result.retries += 1
                else:
                    failed_attempts.pop(seq, None)
                    result.dead_letter_list.append(
                        DeadLetter(
                            function=self._name,
                            arrival=arrivals[seq],
                            attempts=tuple(history),
                        )
                    )
            if (
                checkpoint is not None
                and checkpoint.tick()
                and self._entry.ready
            ):
                checkpoint.write(
                    self._snapshot_state(
                        result, session, None, heap, failed_attempts,
                        arrival_times, completion_times,
                    )
                )

    # -- checkpointing -----------------------------------------------------

    def _snapshot_state(
        self,
        result: KernelResult,
        session,
        cursor: int | None,
        heap: list[tuple[float, int, int]] | None,
        failed_attempts: dict[int, list[InvocationRecord]] | None,
        arrival_times: list[float],
        completion_times: list[float],
    ) -> dict:
        """Everything needed to resume this kernel replay, JSON-safe.

        Only taken once the template is ready, so every shadow —
        including capture-phase ones still backed by a real instance —
        serializes as a pure simulated meter: once synthesis is on, the
        real interpreter behind an adopted shadow is never consulted
        again, and ``_kill`` tolerates ``real=None``.
        """
        by_container: dict[int, _Shadow] = {}
        for _, _, shadow in self._busy:
            by_container[id(shadow.container)] = shadow
        for _, shadow in self._idle:
            by_container[id(shadow.container)] = shadow
        items = []
        seen: set[str] = set()
        for element in self._function.instances:
            shadow = (
                element
                if isinstance(element, _Shadow)
                else by_container.get(id(element))
            )
            if shadow is None:
                # An adopted real instance the pool already dropped (idle
                # expiry without a host layer): never serves again, but
                # list membership is behaviour, so keep a pure stand-in.
                shadow = self._wrap(element)
            seen.add(shadow.instance_id)
            items.append(self._shadow_state(shadow, owned=True))
        for _, _, shadow in self._busy:
            if shadow.instance_id not in seen:
                seen.add(shadow.instance_id)
                items.append(self._shadow_state(shadow, owned=False))
        for _, shadow in self._idle:
            if shadow.instance_id not in seen:
                seen.add(shadow.instance_id)
                items.append(self._shadow_state(shadow, owned=False))
        hosts = self._hosts
        return {
            "engine": "kernel",
            "function": self._name,
            "arrivals": result.arrivals,
            "mode": "fast" if session is None else "retry",
            "cursor": cursor,
            "heap": [[t, seq, attempt] for t, seq, attempt in heap]
            if heap is not None
            else None,
            "failed": {
                str(seq): [record.to_dict() for record in records]
                for seq, records in failed_attempts.items()
            }
            if failed_attempts is not None
            else None,
            "session": session.snapshot() if session is not None else None,
            "platform": snapshot_platform_state(self.emulator, self._function),
            "hosts": hosts.snapshot() if hosts is not None else None,
            "instances": items,
            "pool": {
                "busy": [
                    [until, seq, shadow.instance_id]
                    for until, seq, shadow in self._busy
                ],
                "idle": [
                    [freed_at, shadow.instance_id]
                    for freed_at, shadow in self._idle
                ],
                "seq": self._seq.value,
            },
            "times": {
                "arrivals": list(arrival_times),
                "completions": list(completion_times),
            },
            "result": {
                "requests": result.requests,
                "delivered": result.delivered,
                "attempts": result.attempts,
                "retries": result.retries,
                "throttled": result.throttled,
                "fallbacks": result.fallbacks,
                "cold_starts": result.cold_starts,
                "warm_starts": result.warm_starts,
                "total_cost": result.total_cost,
                "dead_letters": [
                    dl.to_dict() for dl in result.dead_letter_list
                ],
            },
        }

    @staticmethod
    def _shadow_state(shadow: _Shadow, *, owned: bool) -> dict:
        return {
            "instance_id": shadow.instance_id,
            "owned": owned,
            "alive": shadow.alive,
            "t": shadow.t,
            "live": shadow.live,
            "peak": shadow.peak,
            "invocations": shadow.invocations,
            "host_id": shadow.host_id,
        }

    @staticmethod
    def _shadow_from_state(item: dict) -> _Shadow:
        shadow = _Shadow(
            item["instance_id"],
            t=float(item["t"]),
            live=float(item["live"]),
            peak=float(item["peak"]),
        )
        shadow.invocations = int(item["invocations"])
        shadow.alive = bool(item["alive"])
        shadow.host_id = item["host_id"]
        return shadow

    def _restore_state(
        self,
        arrivals: list[float],
        session,
        result: KernelResult,
        arrival_times: list[float],
        completion_times: list[float],
        state: dict,
    ) -> tuple[int, list[tuple[float, int, int]] | None, dict]:
        """Adopt a :meth:`_snapshot_state` dict; returns the loop cursor."""
        if state.get("engine") != "kernel":
            raise CheckpointError(
                f"checkpoint was written by the {state.get('engine')!r} "
                "engine; cannot resume with the KernelReplayer"
            )
        if state.get("function") != self._name:
            raise CheckpointError(
                f"checkpoint is for {state.get('function')!r}, "
                f"not {self._name!r}"
            )
        if state.get("arrivals") != len(arrivals):
            raise CheckpointError(
                f"checkpoint covers {state.get('arrivals')} arrivals but the "
                f"trace has {len(arrivals)}: trace changed since the snapshot"
            )
        mode = "fast" if session is None else "retry"
        if state.get("mode") != mode:
            raise CheckpointError(
                "retry configuration changed since the checkpoint was written"
            )
        emulator = self.emulator
        result.reexecuted = restore_platform_state(
            emulator, self._function, state["platform"]
        )
        # The ledger restore replaced every FunctionBill object; re-bind
        # the incremental reference _emit charges against.
        self._bill = emulator.ledger.bill_for(self._name)
        if not self._entry.ready:
            self._recapture_templates()

        by_id: dict[str, _Shadow] = {}
        owners: dict[str, list | None] = {}
        self._function.instances.clear()
        for item in state["instances"]:
            shadow = self._shadow_from_state(item)
            by_id[shadow.instance_id] = shadow
            if item["owned"]:
                self._function.instances.append(shadow)
                owners[shadow.instance_id] = self._function.instances
            else:
                owners[shadow.instance_id] = None

        hosts = self._hosts
        if hosts is not None:
            if state["hosts"] is None:
                raise CheckpointError(
                    "checkpoint has no host-pool state but a host pool is "
                    "configured"
                )
            hosts.restore(state["hosts"], by_id, owners)
        elif state["hosts"] is not None:
            raise CheckpointError(
                "checkpoint carries host-pool state but no host pool is "
                "configured"
            )

        pool = state["pool"]
        self._seq.value = int(pool["seq"])
        self._busy = [
            (float(until), int(seq), by_id[iid]) for until, seq, iid in pool["busy"]
        ]
        heapq.heapify(self._busy)
        self._idle = [
            (float(freed_at), by_id[iid]) for freed_at, iid in pool["idle"]
        ]
        # The snapshotting run already adopted whatever predated it.
        self._adopted = True

        res = state["result"]
        result.requests = int(res["requests"])
        result.delivered = int(res["delivered"])
        result.attempts = int(res["attempts"])
        result.retries = int(res["retries"])
        result.throttled = int(res["throttled"])
        result.fallbacks = int(res["fallbacks"])
        result.cold_starts = int(res["cold_starts"])
        result.warm_starts = int(res["warm_starts"])
        result.total_cost = float(res["total_cost"])
        result.dead_letter_list = [
            DeadLetter(
                function=item["function"],
                arrival=float(item["arrival"]),
                attempts=tuple(
                    InvocationRecord.from_dict(record)
                    for record in item["attempts"]
                ),
            )
            for item in res["dead_letters"]
        ]
        arrival_times.extend(float(t) for t in state["times"]["arrivals"])
        completion_times.extend(float(t) for t in state["times"]["completions"])

        if session is not None:
            session.restore(state["session"])
        failed = {
            int(seq): [InvocationRecord.from_dict(record) for record in records]
            for seq, records in (state["failed"] or {}).items()
        }
        start_index = int(state["cursor"]) if state["cursor"] is not None else 0
        heap = None
        if state["heap"] is not None:
            heap = [(float(t), int(s), int(a)) for t, s, a in state["heap"]]
            heapq.heapify(heap)
        return start_index, heap, failed

    def _recapture_templates(self) -> None:
        """Rebuild the (bundle, event) templates on a scratch instance.

        Templates are a pure function of the bundle manifest and the
        event — deterministic virtual metering is the repo's premise —
        so a resumed shard, whose per-process :class:`TemplateStore`
        starts empty, re-derives them without touching any replay state:
        the scratch instance runs outside the clock, faults, hosts, log,
        and ledger, exactly one real cold start plus two real warm
        invocations, mirroring the capture paths.
        """
        entry = self._entry
        function = self._function
        instance = FunctionInstance(function.name, function.bundle, created_at=0.0)
        try:
            init_s = instance.initialize()
            meter = instance.app.meter
            modules = (
                tuple(aggregate_charges(meter.events))
                if self._attribution is not None
                else None
            )
            init_live = meter.live_mb
            init_peak = meter.peak_mb
            output = instance.invoke(self._event, self._context, at=0.0)
            if entry.cold is None and not entry.disabled:
                entry.cold = _ColdTemplate(
                    init_s=init_s,
                    init_live=init_live,
                    init_peak=init_peak,
                    post_t=meter.time_s,
                    post_live=meter.live_mb,
                    post_peak=meter.peak_mb,
                    exec1_s=output.exec_time_s,
                    value=output.value,
                    value_key=_value_key(output.value),
                    error_type=output.error_type,
                    modules=modules if modules is not None else (),
                )
            while entry.warm is None and not entry.disabled:
                events_before = len(meter.events)
                live_before = meter.live_mb
                output = instance.invoke(self._event, self._context, at=0.0)
                events = meter.events[events_before:]
                times = tuple(e.time_s for e in events)
                mems = tuple(e.memory_mb for e in events)
                live = live_before
                for mb in mems:
                    if mb:
                        live += mb
                candidate = (times, mems, output.value, output.error_type)
                if live != meter.live_mb:
                    entry.disabled = True
                elif entry.candidate is None:
                    entry.candidate = candidate
                elif entry.candidate == candidate:
                    entry.warm = _WarmTemplate(
                        times=times,
                        mems=mems,
                        has_mem=any(mems),
                        value=output.value,
                        value_key=_value_key(output.value),
                        error_type=output.error_type,
                    )
                else:
                    entry.disabled = True
        finally:
            instance.shutdown()
        if not entry.ready:
            raise CheckpointError(
                f"template recapture failed for {function.name!r}: the "
                "checkpoint was written on the kernel path but the bundle "
                "no longer verifies"
            )

    # -- serving one attempt ----------------------------------------------

    def _serve(
        self, t: float, want_record: bool
    ) -> tuple[int, int, float, float, InvocationRecord | None]:
        """Serve one attempt at trace time *t*.

        Returns ``(status_index, start_index, completion, cost,
        record)`` — *record* is materialised only for non-success
        outcomes when *want_record* (the retry path needs them).
        """
        hosts = self._hosts
        if hosts is not None:
            # Same serve ordering as the reference engine: due host faults
            # fire first, then the throttle draw, then warm acquisition.
            hosts.advance(t)
        faults = self._faults
        if faults is not None and faults.throttled(self._name, t):
            return self._emit_throttle(t, want_record)[:5]
        shadow = self._acquire_warm(t)
        warm_attempt = shadow is not None
        if shadow is not None:
            entry = self._entry
            if entry.warm is not None and not entry.disabled:
                out = self._synth_warm(shadow, t, want_record)
            else:
                out = self._capture_warm(shadow, t, want_record)
        else:
            placement = (
                hosts.admit(self._name, t, memory_mb=self._memory_mb)
                if hosts is not None
                else None
            )
            if hosts is not None and placement is None:
                return self._emit_throttle(
                    t, want_record, error="CapacityExhausted"
                )[:5]
            entry = self._entry
            if entry.ready:
                out = self._synth_cold(t, want_record, placement)
            else:
                out = self._capture_cold(t, want_record, placement)
        shadow = out[5]
        # The reference engine only feeds the footprint tracker when the
        # served instance is still owned by the function: a cold start
        # whose instance crashed mid-execution was already discarded and
        # never reports a peak (warm crashes do — the instance served
        # from the pool before dying).
        if (
            hosts is not None
            and shadow is not None
            and (warm_attempt or shadow.alive)
        ):
            hosts.adjust(shadow.instance_id, shadow.peak, t)
            hosts.observe_footprint(self._name, shadow.peak)
        if shadow is not None and shadow.alive:
            heapq.heappush(self._busy, (out[2], next(self._seq), shadow))
            if hosts is not None:
                hosts.record_use(shadow.instance_id, out[2])
        return out[:5]

    def _acquire_warm(self, t: float) -> _Shadow | None:
        """The reference engine's MRU warm-pool acquire, over shadows."""
        idle = self._idle
        if not self._adopted:
            self._adopted = True
            for existing in self._function.instances:
                if existing.alive:
                    idle.append((t, self._wrap(existing)))
        busy = self._busy
        while busy and busy[0][0] <= t:
            freed_at, _, freed = heapq.heappop(busy)
            idle.append((freed_at, freed))
        keep_alive = self.emulator.keep_alive_s
        while idle:
            freed_at, candidate = idle[-1]
            if t - freed_at > keep_alive:
                # Keep-alive expiry frees host memory, mirroring the
                # reference engine; retire() guards ``alive``, so a shadow
                # the pool already evicted is never double-killed.
                hosts = self._hosts
                if hosts is not None:
                    for _, stale in idle:
                        hosts.retire(stale.instance_id)
                idle.clear()
                return None
            idle.pop()
            if candidate.alive:
                return candidate
        return None

    def _wrap(self, instance: FunctionInstance) -> _Shadow:
        """Adopt a pre-existing real instance into the shadow pool."""
        meter = instance.app.meter
        shadow = _Shadow(
            instance.instance_id,
            t=meter.time_s,
            live=meter.live_mb,
            peak=meter.peak_mb,
            real=instance,
        )
        shadow.invocations = instance.invocations
        shadow.container = instance
        shadow.host_id = instance.host_id
        return shadow

    def _kill(self, shadow: _Shadow) -> None:
        shadow.shutdown()
        instances = self._function.instances
        if shadow.container in instances:
            instances.remove(shadow.container)
        if self._hosts is not None:
            self._hosts.release(shadow.instance_id)

    # -- capture paths (real execution) ------------------------------------

    def _capture_cold(self, t: float, want_record: bool, placement=None):
        function = self._function
        clock = self._clock
        instance_init_s, transmission_s = self._overhead
        clock.advance(self._overhead_sum)
        instance = FunctionInstance(
            function.name,
            function.bundle,
            created_at=clock.now(),
            sequence=function.instance_seq,
        )
        init_s = instance.initialize()
        clock.advance(init_s)
        meter = instance.app.meter
        # Aggregate the init charge stream before invoke() appends exec
        # events; captured once per template, reused by every synthesis.
        modules = (
            tuple(aggregate_charges(meter.events))
            if self._attribution is not None
            else None
        )
        faults = self._faults
        if faults is not None and faults.cold_start_crash(function.name, clock.now()):
            instance.shutdown()
            if placement is not None:
                self._hosts.cancel(placement)
            peak = meter.peak_mb
            if modules is not None:
                self._cold_pending = (modules, False)
            return self._emit_cold_crash(
                t, instance.instance_id, init_s, peak, want_record
            )
        shadow = _Shadow(instance.instance_id, real=instance)
        function.instances.append(shadow)
        if placement is not None:
            self._hosts.bind(placement, shadow, function.instances)
        init_live = meter.live_mb
        init_peak = meter.peak_mb
        output = instance.invoke(self._event, self._context, at=clock.now())
        entry = self._entry
        if entry.cold is None and not entry.disabled:
            entry.cold = _ColdTemplate(
                init_s=init_s,
                init_live=init_live,
                init_peak=init_peak,
                post_t=meter.time_s,
                post_live=meter.live_mb,
                post_peak=meter.peak_mb,
                exec1_s=output.exec_time_s,
                value=output.value,
                value_key=_value_key(output.value),
                error_type=output.error_type,
                modules=modules if modules is not None else (),
            )
        if modules is not None:
            self._cold_pending = (modules, True)
        shadow.t = meter.time_s
        shadow.live = meter.live_mb
        shadow.peak = meter.peak_mb
        shadow.invocations = instance.invocations
        return self._finish_run(
            shadow,
            t,
            _COLD,
            instance_init_s,
            transmission_s,
            init_s,
            output.exec_time_s,
            output.value,
            None,
            output.error_type,
            want_record,
        )

    def _capture_warm(self, shadow: _Shadow, t: float, want_record: bool):
        instance = shadow.real
        if instance is None:  # pragma: no cover - ready-gating prevents it
            raise PlatformError(
                "kernel invariant violated: synthesized instance asked to "
                "capture"
            )
        meter = instance.app.meter
        events_before = len(meter.events)
        live_before = meter.live_mb
        output = instance.invoke(self._event, self._context, at=self._clock.now())
        entry = self._entry
        if entry.warm is None and not entry.disabled:
            events = meter.events[events_before:]
            times = tuple(e.time_s for e in events)
            mems = tuple(e.memory_mb for e in events)
            # Replaying deltas must reproduce the live footprint; a
            # handler that frees memory breaks that and stays real.
            live = live_before
            for mb in mems:
                if mb:
                    live += mb
            candidate = (times, mems, output.value, output.error_type)
            if live != meter.live_mb:
                entry.disabled = True
            elif entry.candidate is None:
                entry.candidate = candidate
            elif entry.candidate == candidate:
                entry.warm = _WarmTemplate(
                    times=times,
                    mems=mems,
                    has_mem=any(mems),
                    value=output.value,
                    value_key=_value_key(output.value),
                    error_type=output.error_type,
                )
            else:
                entry.disabled = True
        shadow.t = meter.time_s
        shadow.live = meter.live_mb
        shadow.peak = meter.peak_mb
        shadow.invocations = instance.invocations
        return self._finish_run(
            shadow,
            t,
            _WARM,
            0.0,
            0.0,
            0.0,
            output.exec_time_s,
            output.value,
            None,
            output.error_type,
            want_record,
        )

    # -- synthesis paths (no interpreter) -----------------------------------

    def _synth_cold(self, t: float, want_record: bool, placement=None):
        function = self._function
        clock = self._clock
        template = self._entry.cold
        instance_init_s, transmission_s = self._overhead
        clock.advance(self._overhead_sum)
        instance_id = f"{function.name}-i{next(function.instance_seq):05d}"
        clock.advance(template.init_s)
        faults = self._faults
        if faults is not None and faults.cold_start_crash(function.name, clock.now()):
            if placement is not None:
                self._hosts.cancel(placement)
            if self._attribution is not None:
                self._cold_pending = (template.modules, False)
            return self._emit_cold_crash(
                t, instance_id, template.init_s, template.init_peak, want_record
            )
        if self._attribution is not None:
            self._cold_pending = (template.modules, True)
        shadow = _Shadow(
            instance_id,
            t=template.post_t,
            live=template.post_live,
            peak=template.post_peak,
        )
        shadow.invocations = 1
        function.instances.append(shadow)
        if placement is not None:
            self._hosts.bind(placement, shadow, function.instances)
        return self._finish_run(
            shadow,
            t,
            _COLD,
            instance_init_s,
            transmission_s,
            template.init_s,
            template.exec1_s,
            template.value,
            template.value_key,
            template.error_type,
            want_record,
        )

    def _synth_warm(self, shadow: _Shadow, t: float, want_record: bool):
        template = self._entry.warm
        # Replay the charge tape as sequential additions: identical
        # operations, identical order, identical floats as the meter.
        running = shadow.t
        for time_s in template.times:
            running += time_s
        exec_raw = running - shadow.t
        shadow.t = running
        if template.has_mem:
            live = shadow.live
            peak = shadow.peak
            for mb in template.mems:
                if mb:
                    live += mb
                    if live > peak:
                        peak = live
            shadow.live = live
            shadow.peak = peak
        shadow.invocations += 1
        return self._finish_run(
            shadow,
            t,
            _WARM,
            0.0,
            0.0,
            0.0,
            exec_raw,
            template.value,
            template.value_key,
            template.error_type,
            want_record,
        )

    # -- shared post-execution math ----------------------------------------

    def _finish_run(
        self,
        shadow: _Shadow,
        arrival: float,
        start_index: int,
        instance_init_s: float,
        transmission_s: float,
        billed_init_s: float,
        exec_raw: float,
        value: Any,
        value_key: Any,
        error_type: str | None,
        want_record: bool,
    ):
        """Everything the reference ``_run`` does after the invocation:
        memory configuration, CPU scaling, the crash/timeout/OOM ladder,
        the clock advance, and record emission."""
        peak = shadow.peak
        memory_mb = self._memory_mb
        configured = memory_mb if memory_mb is not None else max(int(peak + 0.999), 1)
        clamped = self._clamp(configured)
        exec_s = exec_raw
        scaling = self.emulator.cpu_scaling
        if scaling is not None:
            exec_s *= scaling.duration_factor(clamped, peak)
        status = _S_SUCCESS if error_type is None else _S_ERROR
        faults = self._faults
        crash = (
            faults.exec_crash(self._name, self._clock.now())
            if faults is not None
            else None
        )
        crash_at = exec_s * crash.fraction if crash is not None else _INF
        # Host-crash truncation, replicated float-for-float from the
        # reference _run: the offset into the exec window is computed with
        # the same addition order, and ties go to the host.
        host_at = _INF
        hosts = self._hosts
        if hosts is not None:
            host_crash = hosts.crash_time(shadow.instance_id)
            if host_crash is not None:
                offset = host_crash - (
                    arrival
                    + self._routing
                    + instance_init_s
                    + transmission_s
                    + billed_init_s
                    + 0.0
                )
                host_at = offset if offset > 0.0 else 0.0
        kill_at = host_at if host_at <= crash_at else crash_at
        timeout_s = self._timeout_s
        timeout_at = (
            timeout_s if timeout_s is not None and exec_s > timeout_s else _INF
        )
        if kill_at < timeout_at and kill_at <= exec_s:
            exec_s = kill_at
            host_killed = host_at <= crash_at
            value, value_key = None, None
            error_type = "HostCrash" if host_killed else "InstanceCrash"
            status = _S_CRASHED
            self._kill(shadow)
            if host_killed:
                hosts.lost_in_flight(self._name, arrival)
        elif timeout_at <= exec_s:
            exec_s = timeout_at
            value, value_key, error_type = None, None, "TimeoutError"
            status = _S_TIMEOUT
        elif memory_mb is not None and peak > clamped:
            value, value_key, error_type = None, None, "OutOfMemoryError"
            status = _S_OOM
            self._kill(shadow)
        self._clock.advance(exec_s)
        billed_duration = billed_init_s + exec_s
        return self._emit(
            start_index,
            status,
            shadow.instance_id,
            instance_init_s,
            transmission_s,
            billed_init_s,
            exec_s,
            configured,
            clamped,
            peak,
            value,
            value_key,
            error_type,
            billed_duration,
            arrival,
            shadow,
            want_record,
        )

    def _emit_cold_crash(
        self,
        arrival: float,
        instance_id: str,
        billed_init_s: float,
        peak: float,
        want_record: bool,
    ):
        """A cold start whose instance died during initialization: the
        init is billed, the instance never joins the pool."""
        memory_mb = self._memory_mb
        configured = memory_mb if memory_mb is not None else max(int(peak + 0.999), 1)
        clamped = self._clamp(configured)
        instance_init_s, transmission_s = self._overhead
        return self._emit(
            _COLD,
            _S_CRASHED,
            instance_id,
            instance_init_s,
            transmission_s,
            billed_init_s,
            0.0,
            configured,
            clamped,
            peak,
            None,
            None,
            "InstanceCrash",
            billed_init_s,
            arrival,
            None,
            want_record,
        )

    def _emit_throttle(
        self, arrival: float, want_record: bool, error: str = "Throttled"
    ):
        request_num = next(self._request_ids)
        timestamp = self._clock.now()
        routing = self._routing
        name = self._name
        self._log.append_row(
            request_num,
            name,
            _THROTTLED_START,
            _S_THROTTLED,
            timestamp,
            None,
            "-",
            0.0,
            0.0,
            0.0,
            0.0,
            0.0,
            routing,
            0.0,
            128,
            0.0,
            0.0,
            error,
        )
        self._bill.throttles += 1
        sink = self._sink
        if sink is not None:
            sink.observe_row(
                (
                    name,
                    _STATUS_VALUES[_S_THROTTLED],
                    False,
                    False,
                    False,
                    False,
                    routing,
                    0.0,
                    0.0,
                    request_num,
                ),
                arrival=arrival,
            )
        completion = arrival + routing
        record = None
        if want_record:
            record = InvocationRecord(
                request_id=f"req-{request_num:06d}",
                function=name,
                start_type=StartType.THROTTLED,
                timestamp=timestamp,
                value=None,
                instance_id="-",
                routing_s=routing,
                cost_usd=0.0,
                error_type=error,
                status=InvocationStatus.THROTTLED,
            )
        return (_S_THROTTLED, _THROTTLED_START, completion, 0.0, record, None)

    def _emit(
        self,
        start_index: int,
        status_index: int,
        instance_id: str,
        instance_init_s: float,
        transmission_s: float,
        billed_init_s: float,
        exec_s: float,
        configured: int,
        clamped: int,
        peak: float,
        value: Any,
        value_key: Any,
        error_type: str | None,
        billed_duration: float,
        arrival: float,
        shadow: _Shadow | None,
        want_record: bool,
    ):
        """Log, bill, and observe one billed invocation — straight into
        the columnar log and the telemetry row path."""
        billed_s = self._billed(billed_duration)
        cost = self._cost(billed_duration, configured)
        timestamp = self._clock.now()
        request_num = next(self._request_ids)
        routing = self._routing
        name = self._name
        if self._attribution is not None and start_index == _COLD:
            pending = self._cold_pending
            self._cold_pending = None
            if pending is not None:
                modules, include_exec = pending
                self._attribution.record(
                    attribute_cold_start(
                        function=name,
                        request_id=f"req-{request_num:06d}",
                        timestamp=timestamp,
                        pricing=self._pricing,
                        memory_config_mb=clamped,
                        modules=modules,
                        billed_init_s=billed_init_s,
                        restore_s=0.0,
                        exec_s=exec_s,
                        billed_duration_s=billed_s,
                        cost_usd=cost,
                        include_exec=include_exec,
                    )
                )
        self._log.append_row(
            request_num,
            name,
            start_index,
            status_index,
            timestamp,
            value,
            instance_id,
            instance_init_s,
            transmission_s,
            billed_init_s,
            0.0,
            exec_s,
            routing,
            billed_s,
            clamped,
            peak,
            cost,
            error_type,
            value_key=value_key,
        )
        bill = self._bill
        bill.invocation_cost += cost
        bill.invocations += 1
        if start_index == _COLD:
            bill.cold_starts += 1
        # Same addition order as InvocationRecord.e2e_s.
        e2e = routing + instance_init_s + transmission_s + billed_init_s + 0.0 + exec_s
        sink = self._sink
        if sink is not None:
            sink.observe_row(
                (
                    name,
                    _STATUS_VALUES[status_index],
                    status_index == _S_SUCCESS,
                    True,
                    start_index == _COLD,
                    start_index == _WARM,
                    e2e,
                    cost,
                    billed_s,
                    request_num,
                ),
                arrival=arrival,
            )
        completion = arrival + e2e
        record = None
        if want_record and status_index != _S_SUCCESS:
            record = InvocationRecord(
                request_id=f"req-{request_num:06d}",
                function=name,
                start_type=_START_TYPES[start_index],
                timestamp=timestamp,
                value=value,
                instance_id=instance_id,
                instance_init_s=instance_init_s,
                transmission_s=transmission_s,
                init_duration_s=billed_init_s,
                restore_duration_s=0.0,
                exec_duration_s=exec_s,
                routing_s=routing,
                billed_duration_s=billed_s,
                memory_config_mb=clamped,
                peak_memory_mb=peak,
                cost_usd=cost,
                error_type=error_type,
                status=_STATUS_TYPES[status_index],
            )
        return (status_index, start_index, completion, cost, record, shadow)

    # -- pricing caches ----------------------------------------------------

    def _clamp(self, configured: int) -> int:
        clamped = self._clamp_cache.get(configured)
        if clamped is None:
            clamped = self._clamp_cache[configured] = (
                self._pricing.clamp_memory_mb(configured)
            )
        return clamped

    def _billed(self, duration_s: float) -> float:
        billed = self._billed_cache.get(duration_s)
        if billed is None:
            billed = self._billed_cache[duration_s] = (
                self._pricing.billed_duration_s(duration_s)
            )
        return billed

    def _cost(self, duration_s: float, configured: int) -> float:
        key = (duration_s, configured)
        cost = self._cost_cache.get(key)
        if cost is None:
            cost = self._cost_cache[key] = self._pricing.invocation_cost(
                duration_s, configured
            )
        return cost
