"""Host failure domains: bin-packed placement, LRU eviction, host loss.

The fleet emulator historically gave every function unlimited instances,
so the only cold-start driver was keep-alive expiry.  Real platforms
bin-pack instances onto memory-constrained hosts, and warm instances die
for reasons the function never caused: the host under them fills up
(memory pressure evicts the least-recently-used warm instance) or
disappears outright (crash, spot reclamation).  That is exactly where
debloating's smaller footprints pay off twice — fewer evictions *and*
cheaper re-initialization — so the host layer makes the λ-trim cost
argument testable under realistic churn.

A :class:`HostPool` owns a fixed set of :class:`Host` slots and places
every pool-managed instance via a pluggable policy (``first-fit``,
``best-fit``, ``spread``).  Reservations start from the function's
configured ``memory_mb`` (the SLAM-style sizing knob) or, failing that,
the largest peak footprint the pool has observed for that function, and
are corrected to the measured peak after every invocation.  When no host
fits, the pool evicts globally-least-recently-used *idle* instances one
at a time until the reservation fits; when nothing idle remains the
request surfaces as a capacity throttle (``THROTTLED`` status with
``error_type="CapacityExhausted"``, unbilled, retryable).

Host faults are declared on the :class:`~repro.platform.faults.FaultPlan`
(:class:`~repro.platform.faults.HostFault`) and resolved to concrete
hosts at pool construction with a pool-owned seeded RNG, so adding host
chaos never perturbs the :class:`~repro.platform.faults.FaultInjector`
RNG stream: a plan's throttle/crash decisions are bit-identical with and
without host faults.  Two kinds exist:

``crash``
    The host dies abruptly at ``at_s``.  Idle residents are lost; an
    invocation *in flight* across the crash instant is truncated at the
    crash (``CRASHED`` record with ``error_type="HostCrash"``, partial
    execution billed) by the emulator's kill ladder, which asks the pool
    for the serving host's static crash time at serve time.

``spot``
    The host receives a reclamation notice at ``at_s`` and drains: warm
    instances are evicted immediately, in-flight invocations finish
    normally (their records are never truncated), and the host accepts
    no further placements.

Everything is deterministic under the virtual clock: placement scans
hosts in id order, LRU order is ``(busy_until, bind_seq)``, and fault
targets are fixed before the first arrival.  The reference
``TraceReplayer`` and the template-synthesizing ``KernelReplayer`` call
the same pool hooks at the same points, so logs, ledgers, and telemetry
stay byte-identical between engines and across worker counts (the fleet
replayer builds one pool per function — see ``docs/robustness.md`` for
the per-shard host-pool caveat).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import ceil, inf
from typing import TYPE_CHECKING, Any

from repro.errors import PlatformError
from repro.platform.checkpoint import SerialCounter
from repro.platform.faults import HostFault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platform.telemetry import TelemetrySink

__all__ = ["PLACEMENT_POLICIES", "HostConfig", "Host", "HostPool"]

#: Placement policies the pool understands, in documentation order.
PLACEMENT_POLICIES = ("first-fit", "best-fit", "spread")


@dataclass(frozen=True)
class HostConfig:
    """Shape of a host pool: how many hosts, how big, how to pack.

    ``default_reserve_mb`` seeds a function's reservation before the pool
    has seen a measured footprint (and the function declares no
    ``memory_mb``), mirroring Lambda's 128 MB floor.
    """

    count: int
    memory_mb: float
    placement: str = "first-fit"
    default_reserve_mb: float = 128.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise PlatformError(f"host count must be >= 1: {self.count}")
        if self.memory_mb <= 0:
            raise PlatformError(f"host memory_mb must be > 0: {self.memory_mb}")
        if self.placement not in PLACEMENT_POLICIES:
            raise PlatformError(
                f"unknown placement policy {self.placement!r}; "
                f"expected one of {', '.join(PLACEMENT_POLICIES)}"
            )
        if self.default_reserve_mb <= 0:
            raise PlatformError(
                f"default_reserve_mb must be > 0: {self.default_reserve_mb}"
            )


class Host:
    """One memory-constrained machine instances are packed onto."""

    __slots__ = ("host_id", "index", "capacity_mb", "used_mb", "alive",
                 "crash_at", "entries")

    def __init__(self, index: int, capacity_mb: float):
        self.host_id = f"host-{index:03d}"
        self.index = index
        self.capacity_mb = capacity_mb
        self.used_mb = 0.0
        self.alive = True
        # Earliest scheduled abrupt crash (``inf`` = never); static from
        # pool construction so in-flight kills are knowable at serve time.
        self.crash_at = inf
        self.entries: dict[str, "_Entry"] = {}

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self.used_mb

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"Host({self.host_id}, {self.used_mb:.0f}/{self.capacity_mb:.0f}MB, {state})"


class _Entry:
    """Pool-side bookkeeping for one placed instance."""

    __slots__ = ("instance", "function", "host", "reserved_mb", "busy_until",
                 "seq", "owner")

    def __init__(self, instance, function: str, host: Host, reserved_mb: float,
                 busy_until: float, seq: int, owner: list | None):
        self.instance = instance
        self.function = function
        self.host = host
        self.reserved_mb = reserved_mb
        self.busy_until = busy_until
        self.seq = seq
        self.owner = owner


class _Placement:
    """A reservation handed out by :meth:`HostPool.admit`."""

    __slots__ = ("host", "reserved_mb", "function")

    def __init__(self, host: Host, reserved_mb: float, function: str):
        self.host = host
        self.reserved_mb = reserved_mb
        self.function = function


class HostPool:
    """Bin-packs instances onto hosts and executes host faults.

    All mutating methods take the current *trace-time* instant so the
    pool can fire due faults, judge idleness, and window telemetry —
    callers (both replay engines and ``LambdaEmulator.invoke``) pass the
    arrival they are serving, which is non-decreasing.
    """

    def __init__(
        self,
        config: HostConfig,
        *,
        host_faults: tuple[HostFault, ...] = (),
        seed: int = 0,
        telemetry: "TelemetrySink | None" = None,
    ):
        self.config = config
        self.telemetry = telemetry
        self.hosts = [Host(i, config.memory_mb) for i in range(config.count)]
        # Resolve unpinned fault targets *now*, with a pool-owned RNG in
        # declaration order, so host chaos never touches the FaultInjector
        # stream (its decisions stay bit-identical with hosts on or off).
        rng = random.Random(seed)
        schedule: list[tuple[float, str, int]] = []
        for fault in host_faults:
            index = fault.host if fault.host is not None else rng.randrange(config.count)
            if not 0 <= index < config.count:
                raise PlatformError(
                    f"host fault targets host {index} but the pool has "
                    f"{config.count} host(s)"
                )
            schedule.append((fault.at_s, fault.kind, index))
            if fault.kind == "crash" and fault.at_s < self.hosts[index].crash_at:
                self.hosts[index].crash_at = fault.at_s
        schedule.sort(key=lambda item: item[0])  # stable: ties keep declaration order
        self._schedule = schedule
        self._fault_pos = 0
        self._entries: dict[str, _Entry] = {}
        self._footprints: dict[str, float] = {}
        self._seq = SerialCounter()
        self._capacity_mb = config.memory_mb * config.count
        self._used_mb = 0.0
        # Counters surfaced via stats_dict() / the dashboard hosts panel.
        self.placements = 0
        self.evictions = 0
        self.host_crashes = 0
        self.spot_reclaims = 0
        self.instances_lost = 0
        self.capacity_throttles = 0
        self.peak_util = 0.0

    # ------------------------------------------------------------------
    # observability

    def util(self) -> float:
        """Fraction of live capacity currently reserved."""
        if self._capacity_mb <= 0.0:
            return 0.0
        return self._used_mb / self._capacity_mb

    def stats_dict(self) -> dict[str, Any]:
        """JSON-safe counters (stable key order for exports)."""
        return {
            "hosts": self.config.count,
            "memory_mb": self.config.memory_mb,
            "placement": self.config.placement,
            "placements": self.placements,
            "evictions": self.evictions,
            "host_crashes": self.host_crashes,
            "spot_reclaims": self.spot_reclaims,
            "instances_lost": self.instances_lost,
            "capacity_throttles": self.capacity_throttles,
            "peak_util": self.peak_util,
        }

    # ------------------------------------------------------------------
    # checkpointing

    def snapshot(self) -> dict:
        """JSON-safe dynamic pool state for kill-and-resume replay.

        Static structure — host count/capacity, the resolved fault
        schedule, and each host's ``crash_at`` — is re-derived identically
        at construction from (config, host_faults, seed), so only the
        mutable side is captured: per-host occupancy/liveness, placement
        entries (by instance id; the instance objects themselves are
        re-bound by the engine on restore), footprints, the fault cursor,
        and the counters.  Non-finite floats (``busy_until`` starts at
        ``-inf``) are encoded as strings.
        """

        def _num(value: float) -> float | str:
            return value if value == value and abs(value) != inf else repr(value)

        return {
            "hosts": [[host.used_mb, host.alive] for host in self.hosts],
            "entries": [
                [
                    instance_id,
                    entry.function,
                    entry.host.index,
                    entry.reserved_mb,
                    _num(entry.busy_until),
                    entry.seq,
                ]
                for instance_id, entry in self._entries.items()
            ],
            "footprints": dict(self._footprints),
            "fault_pos": self._fault_pos,
            "seq": self._seq.value,
            "used_mb": self._used_mb,
            "capacity_mb": self._capacity_mb,
            "placements": self.placements,
            "evictions": self.evictions,
            "host_crashes": self.host_crashes,
            "spot_reclaims": self.spot_reclaims,
            "instances_lost": self.instances_lost,
            "capacity_throttles": self.capacity_throttles,
            "peak_util": self.peak_util,
        }

    def restore(
        self,
        state: dict,
        instances: dict[str, Any],
        owners: dict[str, list | None],
    ) -> None:
        """Adopt a :meth:`snapshot` into this freshly constructed pool.

        *instances* maps instance id to the restored instance object for
        every placed entry; *owners* maps instance id to the
        ``function.instances`` list the instance lives in (``None`` for
        unowned).  The pool must have been built with the same config,
        fault schedule, and seed as the snapshotting one.
        """

        def _denum(value: Any) -> float:
            return float(value)

        for host, (used_mb, alive) in zip(self.hosts, state["hosts"]):
            host.used_mb = float(used_mb)
            host.alive = bool(alive)
            host.entries = {}
        self._entries = {}
        for instance_id, function, host_index, reserved, busy, seq in state[
            "entries"
        ]:
            instance = instances[instance_id]
            host = self.hosts[int(host_index)]
            entry = _Entry(
                instance,
                function,
                host,
                float(reserved),
                _denum(busy),
                int(seq),
                owners.get(instance_id),
            )
            self._entries[instance_id] = entry
            host.entries[instance_id] = entry
            instance.host_id = host.host_id
        self._footprints = {
            name: float(mb) for name, mb in state["footprints"].items()
        }
        self._fault_pos = int(state["fault_pos"])
        self._seq.value = int(state["seq"])
        self._used_mb = float(state["used_mb"])
        self._capacity_mb = float(state["capacity_mb"])
        self.placements = int(state["placements"])
        self.evictions = int(state["evictions"])
        self.host_crashes = int(state["host_crashes"])
        self.spot_reclaims = int(state["spot_reclaims"])
        self.instances_lost = int(state["instances_lost"])
        self.capacity_throttles = int(state["capacity_throttles"])
        self.peak_util = float(state["peak_util"])

    def _emit(self, function: str, kind: str, arrival: float) -> None:
        util = self.util()
        if util > self.peak_util:
            self.peak_util = util
        if self.telemetry is not None:
            self.telemetry.observe_host(function, kind, util, arrival=arrival)

    # ------------------------------------------------------------------
    # fault schedule

    def advance(self, now: float) -> None:
        """Fire every scheduled host fault with ``at_s <= now``."""
        schedule = self._schedule
        while self._fault_pos < len(schedule) and schedule[self._fault_pos][0] <= now:
            at_s, kind, index = schedule[self._fault_pos]
            self._fault_pos += 1
            host = self.hosts[index]
            if not host.alive:
                continue
            if kind == "crash":
                self.host_crashes += 1
            else:
                self.spot_reclaims += 1
            # Residents die either way; the crash/spot distinction is in
            # the kill ladder (crash truncates in-flight work via
            # ``crash_time``; a spot drain never does — records already
            # emitted for in-flight invocations stand untouched).
            for entry in list(host.entries.values()):
                instance = entry.instance
                if instance.alive:
                    instance.shutdown()
                self._remove_from_owner(entry)
                self._release_entry(entry)
                self.instances_lost += 1
                self._emit(entry.function, "host_loss", at_s)
            host.alive = False
            self._capacity_mb -= host.capacity_mb

    def crash_time(self, instance_id: str) -> float | None:
        """Static crash instant of the host serving *instance_id* (if any)."""
        entry = self._entries.get(instance_id)
        if entry is None:
            return None
        crash_at = entry.host.crash_at
        return crash_at if crash_at != inf else None

    def lost_in_flight(self, function: str, now: float) -> None:
        """Account an in-flight invocation killed by a host crash."""
        self.instances_lost += 1
        self._emit(function, "host_loss", now)

    # ------------------------------------------------------------------
    # placement

    def _find_slot(self, reserve_mb: float) -> Host | None:
        placement = self.config.placement
        best: Host | None = None
        for host in self.hosts:
            if not host.alive or host.free_mb < reserve_mb:
                continue
            if placement == "first-fit":
                return host
            if best is None:
                best = host
            elif placement == "best-fit":
                if host.free_mb < best.free_mb:
                    best = host
            else:  # spread
                if host.free_mb > best.free_mb:
                    best = host
        return best

    def _lru_idle(self, now: float, host: Host | None = None,
                  exclude: str | None = None) -> _Entry | None:
        entries = host.entries.values() if host is not None else self._entries.values()
        best: _Entry | None = None
        for entry in entries:
            if entry.busy_until > now:
                continue
            if exclude is not None and entry.instance.instance_id == exclude:
                continue
            if best is None or (entry.busy_until, entry.seq) < (best.busy_until, best.seq):
                best = entry
        return best

    def _evict(self, entry: _Entry, now: float) -> None:
        instance = entry.instance
        if instance.alive:
            instance.shutdown()
        self._remove_from_owner(entry)
        self._release_entry(entry)
        self.evictions += 1
        self._emit(entry.function, "eviction", now)

    def reserve_for(self, function: str, memory_mb: float | None) -> float:
        """Reservation size: declared memory_mb, else observed footprint."""
        if memory_mb is not None:
            return float(memory_mb)
        return self._footprints.get(function, self.config.default_reserve_mb)

    def admit(self, function: str, now: float, *,
              memory_mb: float | None = None) -> _Placement | None:
        """Reserve room for one new instance, evicting LRU idlers if needed.

        Returns ``None`` when capacity is exhausted (nothing idle left to
        evict) — the caller surfaces that as a capacity throttle.
        """
        reserve = self.reserve_for(function, memory_mb)
        while True:
            host = self._find_slot(reserve)
            if host is not None:
                host.used_mb += reserve
                self._used_mb += reserve
                self.placements += 1
                self._emit(function, "placement", now)
                return _Placement(host, reserve, function)
            victim = self._lru_idle(now)
            if victim is None:
                self.capacity_throttles += 1
                return None
            self._evict(victim, now)

    def bind(self, placement: _Placement, instance,
             owner: list | None = None) -> None:
        """Attach the created instance to its reservation.

        *instance* is anything with ``instance_id``/``alive``/``shutdown``
        (a real :class:`FunctionInstance` or a kernel shadow); *owner* is
        the ``function.instances`` list the instance lives in, so pool
        kills keep the emulator's warm set consistent.
        """
        entry = _Entry(
            instance,
            placement.function,
            placement.host,
            placement.reserved_mb,
            -inf,
            next(self._seq),
            owner,
        )
        self._entries[instance.instance_id] = entry
        placement.host.entries[instance.instance_id] = entry
        instance.host_id = placement.host.host_id

    def cancel(self, placement: _Placement) -> None:
        """Give back an admitted reservation that never produced an instance
        (cold-start crash during Function Initialization)."""
        placement.host.used_mb -= placement.reserved_mb
        self._used_mb -= placement.reserved_mb

    # ------------------------------------------------------------------
    # lifecycle accounting

    def observe_footprint(self, function: str, peak_mb: float) -> None:
        """Remember the largest measured footprint for future reservations."""
        rounded = float(ceil(peak_mb)) if peak_mb > 0 else 1.0
        if rounded > self._footprints.get(function, 0.0):
            self._footprints[function] = rounded

    def adjust(self, instance_id: str, peak_mb: float, now: float) -> None:
        """Correct a reservation to the measured peak; evict under pressure.

        Reservations only grow (peaks are monotone per instance).  If the
        growth pushes the host over capacity, idle LRU residents of *that
        host* are evicted — never the instance that just ran.
        """
        entry = self._entries.get(instance_id)
        if entry is None or peak_mb <= entry.reserved_mb:
            return
        delta = peak_mb - entry.reserved_mb
        entry.reserved_mb = peak_mb
        host = entry.host
        host.used_mb += delta
        self._used_mb += delta
        while host.used_mb > host.capacity_mb:
            victim = self._lru_idle(now, host, exclude=instance_id)
            if victim is None:
                break
            self._evict(victim, now)
        util = self.util()
        if util > self.peak_util:
            self.peak_util = util

    def record_use(self, instance_id: str, busy_until: float) -> None:
        """Note the instance is serving until *busy_until* (LRU recency)."""
        entry = self._entries.get(instance_id)
        if entry is None:
            return
        if busy_until > entry.busy_until:
            entry.busy_until = busy_until
        entry.seq = next(self._seq)

    def release(self, instance_id: str) -> None:
        """Drop an instance the emulator already killed (idempotent)."""
        entry = self._entries.get(instance_id)
        if entry is not None:
            self._release_entry(entry)

    def retire(self, instance_id: str) -> bool:
        """Keep-alive expiry: shut the instance down and free its slot.

        Returns ``False`` for instances the pool never placed (legacy
        warm instances adopted mid-replay), which callers leave alone.
        """
        entry = self._entries.get(instance_id)
        if entry is None:
            return False
        instance = entry.instance
        if instance.alive:
            instance.shutdown()
        self._remove_from_owner(entry)
        self._release_entry(entry)
        return True

    def evacuate(self, function: str) -> None:
        """Release every entry of *function* (hot-swap via update_function)."""
        for entry in [e for e in self._entries.values() if e.function == function]:
            self._release_entry(entry)

    def _remove_from_owner(self, entry: _Entry) -> None:
        if entry.owner is None:
            return
        container = getattr(entry.instance, "container", entry.instance)
        if container in entry.owner:
            entry.owner.remove(container)

    def _release_entry(self, entry: _Entry) -> None:
        instance_id = entry.instance.instance_id
        self._entries.pop(instance_id, None)
        entry.host.entries.pop(instance_id, None)
        entry.host.used_mb -= entry.reserved_mb
        if entry.host.alive:
            self._used_mb -= entry.reserved_mb
