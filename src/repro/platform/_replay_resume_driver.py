"""Subprocess driver for the fleet kill-and-resume crash harness.

Usage (spawned by ``tests/platform/test_replay_crash_resume.py`` and
``benchmarks/bench_resume_replay_smoke.py``)::

    python -m repro.platform._replay_resume_driver build-toy <dir>
    python -m repro.platform._replay_resume_driver run --bundle B --out O
        [--workers N] [--engine E] [--checkpoint-dir D]
        [--checkpoint-every N] [--resume] [--kill-at N] [--kill-flag P]
        [--invocations N] [--max-per-function N] [--seed S] [--plain]

``--kill-at N`` installs a post-checkpoint hook that SIGKILLs the
process at the N-th durable checkpoint/done write — i.e. at an exact
resume boundary.  With ``--kill-flag`` the kill fires **once** across
the whole process tree (the flag file is created with ``O_EXCL``), which
is how the multi-worker supervisor test kills exactly one pool worker:
the hook is inherited by fork, every worker counts its own writes, and
the first to reach the boundary wins the flag and dies.  Without a flag
the kill is unconditional past N — the single-process "dead parent"
case.

Unless ``--plain`` is passed, the replay runs under retries, execution
faults, a host crash, and cold-start attribution, so a checkpoint must
carry every RNG and running float sum to reproduce the baseline.  On
normal completion one JSON summary line (prefixed by a sentinel) lands
on stdout with resume accounting, a boundary count, and the SHA-256 of
every merged export — the bytes the harness asserts are identical to an
uninterrupted same-seed run.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path

SENTINEL = "@@LAMBDA_TRIM_REPLAY_RESUME@@"

EVENT = {"x": [1.0, 2.0], "y": [3.0, 4.0]}

ARTIFACTS = ("merged.jsonl", "dead.jsonl", "profiles.jsonl", "report.json")

# Process-wide tally of durable checkpoint/done writes, kept by a
# counting hook so the harness can enumerate every kill boundary.
_boundaries = 0


def _cmd_build_toy(args: argparse.Namespace) -> int:
    from repro.workloads.toy import build_toy_torch_app

    bundle = build_toy_torch_app(args.directory)
    print(SENTINEL + json.dumps({"root": str(bundle.root), "name": bundle.name}))
    return 0


def _install_hook(kill_at: int | None, flag: str | None) -> None:
    from repro.platform import checkpoint

    def at_boundary(count: int) -> None:
        global _boundaries
        _boundaries = count
        if kill_at is None or count < kill_at:
            return
        if flag is not None:
            try:
                fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return
            os.close(fd)
        # SIGKILL: no cleanup, no atexit, no flush — the harshest crash
        # the checkpoint durability contract must survive.
        os.kill(os.getpid(), signal.SIGKILL)

    checkpoint.set_post_checkpoint_hook(at_boundary)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.bundle import AppBundle
    from repro.core.journal import file_sha256
    from repro.platform.faults import FaultPlan, FaultRates, HostFault
    from repro.platform.fleet import replay_fleet
    from repro.platform.hosts import HostConfig
    from repro.platform.retry import RetryPolicy
    from repro.traces.fleet import FleetTrace

    _install_hook(args.kill_at, args.kill_flag)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    trace = FleetTrace.generate_invocations(
        args.invocations,
        seed=args.seed,
        duration_s=600.0,
        max_per_function=args.max_per_function,
    )
    retry = faults = hosts = None
    if not args.plain:
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.05, jitter=0.3, seed=11)
        # exec_crash high enough that some requests exhaust all three
        # attempts: the dead-letter export is part of the byte-identity
        # contract and must survive a kill too.
        faults = FaultPlan(
            seed=7,
            default=FaultRates(throttle=0.05, exec_crash=0.35),
            host_faults=(HostFault(kind="crash", at_s=40.0),),
        )
        hosts = HostConfig(count=3, memory_mb=4096.0)
    result = replay_fleet(
        AppBundle(args.bundle),
        trace,
        EVENT,
        workers=args.workers,
        retry=retry,
        faults=faults,
        hosts=hosts,
        dead_letters=out / "dead.jsonl",
        log_dir=out / "logs",
        merged_log=out / "merged.jsonl",
        profile_dir=out / "profiles",
        merged_profiles=out / "profiles.jsonl",
        spill_threshold=16,
        engine=args.engine,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    result.report.save(out / "report.json")
    summary = {
        "arrivals": result.arrivals,
        "delivered": result.delivered,
        "records": result.records,
        "status_counts": dict(sorted(result.status_counts().items())),
        "total_cost_usd": result.total_cost,
        "resumed_shards": result.resumed_shards,
        "reexecuted_invocations": result.reexecuted_invocations,
        "boundaries": _boundaries,
        "artifacts": {name: file_sha256(out / name) for name in ARTIFACTS},
    }
    print(SENTINEL + json.dumps(summary, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-replay-resume-driver")
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build-toy")
    build.add_argument("directory")

    run = commands.add_parser("run")
    run.add_argument("--bundle", required=True)
    run.add_argument("--out", required=True)
    run.add_argument("--workers", type=int, default=1)
    run.add_argument("--engine", default="auto")
    run.add_argument("--checkpoint-dir", default=None)
    run.add_argument("--checkpoint-every", type=int, default=None)
    run.add_argument("--resume", action="store_true")
    run.add_argument("--kill-at", type=int, default=None)
    run.add_argument("--kill-flag", default=None)
    run.add_argument("--invocations", type=int, default=100)
    run.add_argument("--max-per-function", type=int, default=60)
    run.add_argument("--seed", type=int, default=5)
    run.add_argument("--plain", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "build-toy":
        return _cmd_build_toy(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
