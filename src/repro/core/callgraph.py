"""Conservative call-graph / attribute-access analysis (PyCG replacement).

λ-trim uses PyCG to learn which module attributes the application
*definitely* accesses; those can safely be excluded from the DD search
(Section 5.1).  This module reimplements that capability with a
conservative AST analysis:

* every ``from m import a`` binding that is actually *used* marks ``a`` as
  an accessed attribute of ``m``;
* every attribute chain rooted at an imported module (``torch.nn.Linear``)
  marks each link as accessed on its owner (``nn`` on ``torch``,
  ``Linear`` on ``torch.nn``);
* simple aliases (``t = torch.nn``) are resolved to their module paths with
  a small fixpoint, so later ``t.Linear`` accesses attribute the right
  module;
* ``getattr(mod, "name")`` with a constant string is recognised;
* star imports poison their module: every attribute is treated as used.

Being conservative only ever *protects more* attributes from removal, which
is safe — DD plus the oracle remain the correctness mechanism; the call
graph is purely an accelerator that shrinks the search space.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.core.static_analyzer import StaticAnalysis, analyze_source
from repro.errors import AnalysisError

__all__ = [
    "CallGraph",
    "build_call_graph",
    "build_call_graph_from_analysis",
    "build_bundle_call_graph",
]

_MAX_ALIAS_PASSES = 10


@dataclass
class CallGraph:
    """Attributes each module path is definitely observed to access."""

    accessed: dict[str, set[str]] = field(default_factory=dict)
    star_modules: set[str] = field(default_factory=set)

    def accessed_attributes(self, module: str) -> set[str]:
        """Attribute names of *module* the application definitely uses."""
        return set(self.accessed.get(module, set()))

    def protects_everything(self, module: str) -> bool:
        """True when a star import forces the whole module to be kept."""
        return module in self.star_modules

    def merge(self, other: "CallGraph") -> None:
        """Fold another graph's facts into this one (multi-file apps)."""
        for module, attrs in other.accessed.items():
            self.accessed.setdefault(module, set()).update(attrs)
        self.star_modules.update(other.star_modules)

    def _mark(self, module: str, attribute: str) -> None:
        self.accessed.setdefault(module, set()).add(attribute)


def build_call_graph(source: str, *, filename: str = "<application>") -> CallGraph:
    """Analyze application *source* and return its attribute-access graph."""
    analysis = analyze_source(source, filename=filename)
    return build_call_graph_from_analysis(source, analysis, filename=filename)


def build_call_graph_from_analysis(
    source: str, analysis: StaticAnalysis, *, filename: str = "<application>"
) -> CallGraph:
    """Build the graph reusing an existing static-analysis pass."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {filename}: {exc}") from exc

    graph = CallGraph()
    bindings: dict[str, str] = {}
    from_bindings: dict[str, tuple[str, str]] = {}

    for imp in analysis.imports:
        if imp.binding == "*":
            graph.star_modules.add(imp.module)
            continue
        bindings[imp.binding] = imp.target
        if imp.is_from:
            from_bindings[imp.binding] = (imp.module, imp.target.rsplit(".", 1)[1])

    _collect_aliases(tree, bindings)
    _collect_accesses(tree, bindings, from_bindings, graph)
    return graph


def build_bundle_call_graph(bundle) -> CallGraph:
    """Whole-program graph: handler plus every library file in the bundle.

    PyCG analyzes the entire program, so attributes one library accesses on
    another (squiggle using numpy) are protected too.  The graph reflects
    the bundle's *current* files: once the debloater removes a re-export,
    recomputing the graph releases the attributes only that re-export
    needed.  Backup files left by an in-flight DD run are skipped.
    """
    graph = build_call_graph(
        bundle.handler_source(), filename=str(bundle.handler_path)
    )
    site = bundle.site_packages
    if site.is_dir():
        for path in sorted(site.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            graph.merge(build_call_graph(source, filename=str(path)))
    return graph


def _collect_aliases(tree: ast.Module, bindings: dict[str, str]) -> None:
    """Fixpoint over simple ``name = <attribute chain>`` aliases."""
    assignments: list[tuple[str, ast.expr]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assignments.append((target.id, node.value))

    for _ in range(_MAX_ALIAS_PASSES):
        changed = False
        for name, value in assignments:
            path = _resolve_chain(value, bindings)
            if path is not None and bindings.get(name) != path:
                bindings[name] = path
                changed = True
        if not changed:
            break


def _collect_accesses(
    tree: ast.Module,
    bindings: dict[str, str],
    from_bindings: dict[str, tuple[str, str]],
    graph: CallGraph,
) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            base = _resolve_chain(node.value, bindings)
            if base is not None:
                graph._mark(base, node.attr)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            hit = from_bindings.get(node.id)
            if hit is not None:
                module, attribute = hit
                graph._mark(module, attribute)
        elif isinstance(node, ast.Call):
            literal = _constant_getattr(node, bindings)
            if literal is not None:
                module, attribute = literal
                graph._mark(module, attribute)


def _resolve_chain(node: ast.expr, bindings: dict[str, str]) -> str | None:
    """Dotted path of a pure ``Name(.attr)*`` chain rooted at a binding."""
    if isinstance(node, ast.Name):
        return bindings.get(node.id)
    if isinstance(node, ast.Attribute):
        base = _resolve_chain(node.value, bindings)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def _constant_getattr(
    node: ast.Call, bindings: dict[str, str]
) -> tuple[str, str] | None:
    """Recognise ``getattr(<module chain>, "literal")`` accesses."""
    if not (isinstance(node.func, ast.Name) and node.func.id == "getattr"):
        return None
    if len(node.args) < 2:
        return None
    target, name = node.args[0], node.args[1]
    if not (isinstance(name, ast.Constant) and isinstance(name.value, str)):
        return None
    base = _resolve_chain(target, bindings)
    if base is None:
        return None
    return base, name.value
