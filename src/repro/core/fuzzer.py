"""Oracle fuzzing: strengthening the specification (Section 5.4).

"One common and relatively robust approach is running a fuzzer against
the optimized program.  If the fuzzer finds a failing input, then the
user can add the input to the oracle set and rerun A-TRIM."

:class:`OracleFuzzer` mutates the oracle's events and executes both the
reference and the optimized bundle on each mutant, reporting any
behavioural divergence.  Mutations are grey-box: besides generic
type-aware mutations (numeric nudges, string edits, list resizing, key
deletion), the fuzzer mines the handler source for the event keys it
reads — ``event["k"]`` / ``event.get("k")`` — and the constants those
keys are compared against, so rarely-taken branches like
``event.get("mode") == "interactive"`` are reachable deterministically.

Everything is seeded; findings convert directly into
:class:`~repro.core.oracle.OracleCase` objects for the re-run workflow.
"""

from __future__ import annotations

import ast
import copy
import random
from dataclasses import dataclass, field
from typing import Any

from repro.bundle import AppBundle
from repro.core.execution import run_once
from repro.core.oracle import OracleCase, OracleSpec

__all__ = ["FuzzFinding", "FuzzReport", "OracleFuzzer", "mine_event_schema"]


@dataclass(frozen=True)
class FuzzFinding:
    """One input on which the optimized bundle diverges from the original."""

    event: Any
    context: Any
    expected: dict
    actual: dict

    @property
    def triggers_fallback(self) -> bool:
        """Would this input trip the AttributeError safety net?"""
        return self.actual.get("error_type") in ("AttributeError", "NameError") or (
            self.actual.get("init_error_type") in ("AttributeError", "NameError")
        )

    def as_oracle_case(self, name: str) -> OracleCase:
        return OracleCase(name=name, event=self.event, context=self.context)


@dataclass
class FuzzReport:
    """Outcome of a fuzzing campaign."""

    executed: int
    findings: list[FuzzFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def suggested_cases(self) -> list[OracleCase]:
        """Deduplicated oracle cases covering every finding."""
        cases: list[OracleCase] = []
        seen: set[str] = set()
        for i, finding in enumerate(self.findings):
            key = repr(finding.event)
            if key not in seen:
                seen.add(key)
                cases.append(finding.as_oracle_case(f"fuzz-{i}"))
        return cases


def mine_event_schema(handler_source: str) -> dict[str, list[Any]]:
    """Event keys the handler reads, with the constants they're compared to.

    ``event["k"]`` and ``event.get("k")`` contribute keys; comparisons and
    ``event.get("k", default)`` contribute interesting values.
    """
    tree = ast.parse(handler_source)
    schema: dict[str, list[Any]] = {}

    def is_event_name(node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id == "event"

    def key_of(node: ast.expr) -> str | None:
        if (
            isinstance(node, ast.Subscript)
            and is_event_name(node.value)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            return node.slice.value
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and is_event_name(node.func.value)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            return node.args[0].value
        return None

    for node in ast.walk(tree):
        key = key_of(node)
        if key is not None:
            schema.setdefault(key, [])
            if isinstance(node, ast.Call) and len(node.args) > 1:
                default = node.args[1]
                if isinstance(default, ast.Constant):
                    schema[key].append(default.value)
        if isinstance(node, ast.Compare):
            left_key = key_of(node.left)
            if left_key is not None:
                for comparator in node.comparators:
                    if isinstance(comparator, ast.Constant):
                        schema.setdefault(left_key, []).append(comparator.value)
        if isinstance(node, ast.If):
            # `if event.get("flag"):` — truthy probe
            test_key = key_of(node.test)
            if test_key is not None:
                schema.setdefault(test_key, []).append(True)
    return schema


class OracleFuzzer:
    """Differential fuzzing of an optimized bundle against its original."""

    def __init__(
        self,
        reference: AppBundle,
        candidate: AppBundle,
        *,
        spec: OracleSpec | None = None,
        seed: int = 0,
    ):
        self.reference = reference
        self.candidate = candidate
        self.spec = spec if spec is not None else OracleSpec.from_bundle(reference)
        self._rng = random.Random(seed)
        self._schema = mine_event_schema(reference.handler_source())

    # -- mutations -----------------------------------------------------------

    def _mutate_value(self, value: Any) -> Any:
        rng = self._rng
        if isinstance(value, bool):
            return not value
        if isinstance(value, int):
            return value + rng.choice((-1, 1, 100, -100))
        if isinstance(value, float):
            return value * rng.choice((0.0, -1.0, 2.0)) + rng.choice((0.0, 1e-3))
        if isinstance(value, str):
            choice = rng.randrange(3)
            if choice == 0:
                return ""
            if choice == 1:
                return value + "!"
            return value * 2
        if isinstance(value, list):
            if value and rng.random() < 0.5:
                return value[:-1]
            return value + value[:1] if value else [0]
        if isinstance(value, dict):
            mutated = dict(value)
            if mutated and rng.random() < 0.5:
                mutated.pop(rng.choice(sorted(mutated)))
            else:
                mutated[f"fuzz_{rng.randrange(10)}"] = rng.randrange(100)
            return mutated
        return value

    def _mutants(self, event: Any, budget: int) -> list[Any]:
        """Deterministic mutants of one oracle event."""
        mutants: list[Any] = []

        # Grey-box first: set each mined key to each mined value.
        if isinstance(event, dict):
            for key in sorted(self._schema):
                for value in self._schema[key] or [True]:
                    mutant = copy.deepcopy(event)
                    mutant[key] = value
                    mutants.append(mutant)
                mutant = copy.deepcopy(event)
                mutant.pop(key, None)
                mutants.append(mutant)

        # Then generic type-aware mutations.
        while len(mutants) < budget:
            if isinstance(event, dict) and event:
                mutant = copy.deepcopy(event)
                key = self._rng.choice(sorted(mutant))
                mutant[key] = self._mutate_value(mutant[key])
                mutants.append(mutant)
            else:
                mutants.append(self._mutate_value(copy.deepcopy(event)))
        return mutants[:budget]

    # -- campaign ----------------------------------------------------------------

    def fuzz(self, *, budget_per_case: int = 20) -> FuzzReport:
        """Run the campaign; every divergence becomes a finding."""
        findings: list[FuzzFinding] = []
        executed = 0
        seen: set[str] = set()
        for case in self.spec:
            for mutant in self._mutants(case.event, budget_per_case):
                key = repr(mutant)
                if key in seen:
                    continue
                seen.add(key)
                executed += 1
                expected = run_once(self.reference, mutant, case.context).observable()
                actual = run_once(self.candidate, mutant, case.context).observable()
                if expected != actual:
                    findings.append(
                        FuzzFinding(
                            event=mutant,
                            context=case.context,
                            expected=expected,
                            actual=actual,
                        )
                    )
        return FuzzReport(executed=executed, findings=findings)
