"""Static analyzer: one AST pass identifying imported modules (Section 5.1).

The analyzer inspects a serverless application's source and reports every
module it imports — including submodules pulled in via ``from pkg.sub
import name`` — together with the local names those imports bind.  The
binding map seeds the call-graph analysis (:mod:`repro.core.callgraph`), and
the external-module list is what the profiler measures and the debloater
trims.

Standard-library modules and the application's own local modules are
filtered out: debloating targets third-party dependencies (Section 2.2's
"external modules" column of Table 1).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field

from repro.errors import AnalysisError

__all__ = ["ImportedModule", "StaticAnalysis", "analyze_source", "analyze_file"]

_STDLIB_MODULES = frozenset(sys.stdlib_module_names)


@dataclass(frozen=True)
class ImportedModule:
    """One import binding discovered in the application source.

    Attributes
    ----------
    module:
        Dotted module path being imported (``torch.nn``).
    binding:
        The local name the statement binds (``nn`` for ``from torch import
        nn``, ``torch`` for ``import torch.nn``).
    target:
        What the binding refers to: for ``from m import a`` this is
        ``m.a`` (which may itself be a module or an attribute); for plain
        imports it equals the bound module path.
    is_from:
        Whether the binding came from a ``from … import`` statement.
    lineno:
        Source line of the import.
    """

    module: str
    binding: str
    target: str
    is_from: bool
    lineno: int

    @property
    def top_level(self) -> str:
        """Top-level package name (``torch`` for ``torch.nn.functional``)."""
        return self.module.split(".")[0]


@dataclass
class StaticAnalysis:
    """Result of the import-discovery pass."""

    imports: list[ImportedModule] = field(default_factory=list)

    def external_modules(
        self, *, local_modules: frozenset[str] | set[str] = frozenset()
    ) -> list[str]:
        """Sorted dotted paths of imported non-stdlib, non-local modules."""
        locals_ = set(local_modules)
        seen: set[str] = set()
        for imp in self.imports:
            top = imp.top_level
            if top in _STDLIB_MODULES or top in locals_ or top == "repro":
                continue
            seen.add(imp.module)
        return sorted(seen)

    def external_top_level(
        self, *, local_modules: frozenset[str] | set[str] = frozenset()
    ) -> list[str]:
        """Sorted top-level external package names (Table 1's module column)."""
        return sorted(
            {m.split(".")[0] for m in self.external_modules(local_modules=local_modules)}
        )

    def bindings(self) -> dict[str, str]:
        """Map of local binding name -> dotted target path.

        Later imports shadow earlier ones, matching Python semantics.
        """
        return {imp.binding: imp.target for imp in self.imports}


class _ImportCollector(ast.NodeVisitor):
    """Collects imports from the whole file, including nested scopes.

    Dynamic imports inside functions still execute eventually; treating them
    like top-level imports keeps the analysis conservative (Section 4's
    "static approach would need to be over-conservative").
    """

    def __init__(self) -> None:
        self.imports: list[ImportedModule] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            binding = alias.asname or alias.name.split(".")[0]
            bound_target = alias.name if alias.asname else alias.name.split(".")[0]
            self.imports.append(
                ImportedModule(
                    module=alias.name,
                    binding=binding,
                    target=bound_target,
                    is_from=False,
                    lineno=node.lineno,
                )
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports are local to the application package
        for alias in node.names:
            if alias.name == "*":
                # Star imports: record the module itself; its attribute
                # surface is unknowable statically, so the call graph will
                # treat every attribute of the module as potentially used.
                self.imports.append(
                    ImportedModule(
                        module=node.module,
                        binding="*",
                        target=f"{node.module}.*",
                        is_from=True,
                        lineno=node.lineno,
                    )
                )
                continue
            binding = alias.asname or alias.name
            self.imports.append(
                ImportedModule(
                    module=node.module,
                    binding=binding,
                    target=f"{node.module}.{alias.name}",
                    is_from=True,
                    lineno=node.lineno,
                )
            )


def analyze_source(source: str, *, filename: str = "<application>") -> StaticAnalysis:
    """Run the import-discovery pass over application source text."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {filename}: {exc}") from exc
    collector = _ImportCollector()
    collector.visit(tree)
    return StaticAnalysis(imports=collector.imports)


def analyze_file(path: str) -> StaticAnalysis:
    """Run the import-discovery pass over a file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return analyze_source(handle.read(), filename=path)
