"""Crash-safe debloating: the write-ahead probe journal and atomic rewrites.

Delta debugging is the dominant cost of λ-trim (hundreds of oracle calls
per module at K=20), and a crash mid-minimization used to discard every
probe and could strand a bundle with half-rewritten modules.  This module
makes the pipeline transactional:

* :class:`ProbeJournal` — an fsync'd, append-only JSONL journal recording
  every DD probe as ``(module, candidate-hash, verdict, granularity,
  seed)`` plus per-module BEGIN/COMMIT records and a run-level
  content-hash manifest.  Replaying the journal
  (:meth:`ProbeJournal.replay`) reconstructs the DD cache so a resumed
  run continues from the last committed module instead of re-probing.

* :func:`atomic_write_text` — write-temp + fsync + atomic rename, so a
  module file is always either the old or the new content, never a torn
  mix.

* :func:`recover_workspace` — integrity verification on resume: committed
  modules are hash-checked against the journal's manifest, torn or
  corrupted files are rolled back to the pristine source, the in-progress
  module is restored, and orphaned ``.lambdatrim.orig`` / temp files from
  interrupted runs are removed.

Journal durability contract: records are appended with ``flush + fsync``
(configurable), so after a crash the journal is a valid JSONL prefix of
the run, except possibly for a torn final line — which
:meth:`ProbeJournal.replay` detects and skips.  Interior corruption (only
possible through external tampering, never a crash) raises
:class:`~repro.errors.JournalError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.errors import JournalError

__all__ = [
    "JOURNAL_VERSION",
    "ProbeJournal",
    "JournalState",
    "ModuleCommit",
    "RecoveryReport",
    "atomic_write_bytes",
    "atomic_write_lines",
    "atomic_write_text",
    "candidate_hash",
    "cleanup_stale_artifacts",
    "default_journal_path",
    "file_sha256",
    "recover_workspace",
    "text_sha256",
]

JOURNAL_VERSION = 1

#: Suffix of the legacy in-place backups and of atomic-write temp files;
#: both are cleaned up by :func:`cleanup_stale_artifacts` on resume.
LEGACY_BACKUP_SUFFIX = ".lambdatrim.orig"
TMP_MARKER = ".lambdatrim.tmp"

# Crash-injection hook for the kill-and-resume harness: called after every
# append with the process-wide running append count.  Tests install a hook
# that SIGKILLs the process at a chosen boundary, which exercises every
# probe/commit edge deterministically.  ``None`` (the default) is free.
_post_append_hook: Callable[[int], None] | None = None
_append_count = 0


def set_post_append_hook(hook: Callable[[int], None] | None) -> None:
    """Install (or clear) the crash-injection hook; returns nothing."""
    global _post_append_hook, _append_count
    _post_append_hook = hook
    _append_count = 0


# -- hashing ----------------------------------------------------------------


def text_sha256(text: str) -> str:
    """Full SHA-256 hex digest of *text* (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def file_sha256(path: Path) -> str:
    """Full SHA-256 hex digest of a file's bytes."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def candidate_hash(keys: Iterable[str]) -> str:
    """Order-insensitive digest of a candidate's component keys.

    The journal stores candidates by this hash rather than by component
    list: it is stable across process restarts (components are re-derived
    from the pristine source on resume) and independent of probe order.
    """
    joined = "\n".join(sorted(keys))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:20]


# -- atomic file rewrites ----------------------------------------------------


def atomic_write_text(path: Path, text: str, *, durable: bool = True) -> None:
    """Replace *path* with *text* via write-temp + (fsync) + atomic rename.

    With ``durable=True`` the temp file is fsync'd before the rename and
    the parent directory after it, so the replacement survives power loss.
    ``durable=False`` keeps only the atomicity guarantee (readers never
    observe a torn file) — used for the high-frequency DD probe rewrites,
    where a lost-but-untorn candidate is recovered from the journal.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + TMP_MARKER
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable:
        _fsync_dir(path.parent)


def atomic_write_bytes(path: Path, data: bytes, *, durable: bool = True) -> None:
    """Binary twin of :func:`atomic_write_text`: same temp + fsync + rename.

    Used for already-encoded payloads (merged record logs assembled as
    UTF-8 byte lines) where a text-mode handle would force a redundant
    decode/encode round trip over the whole export.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + TMP_MARKER
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable:
        _fsync_dir(path.parent)


def atomic_write_lines(
    path: Path, lines: Iterable[str], *, durable: bool = True
) -> None:
    """Stream *lines* (no trailing newlines) to *path* atomically.

    The streaming twin of :func:`atomic_write_text` for exports too large
    to join in memory (merged record logs, dead-letter spools): lines are
    written to a temp file in the destination directory, fsync'd, then
    renamed over *path* — readers never observe a torn or partial export.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + TMP_MARKER
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable:
        _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory (rename durability)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem without dir fsync
        pass
    finally:
        os.close(fd)


def cleanup_stale_artifacts(root: Path) -> list[Path]:
    """Remove orphaned backup/temp files left by an interrupted run.

    Deletes every ``*.lambdatrim.orig`` legacy backup and every
    ``*.lambdatrim.tmp*`` atomic-write temp file under *root*; returns the
    removed paths (for recovery reporting).
    """
    removed: list[Path] = []
    root = Path(root)
    for pattern in (f"*{LEGACY_BACKUP_SUFFIX}", f"*{TMP_MARKER}*"):
        for stale in sorted(root.rglob(pattern)):
            if stale.is_file():
                stale.unlink()
                removed.append(stale)
    return removed


def default_journal_path(output_dir: Path) -> Path:
    """Where a trim run journals by default: next to the output bundle.

    The journal deliberately lives *outside* the bundle tree, so the
    optimized bundle stays byte-identical to an unjournalled run and
    deploys unchanged.
    """
    output_dir = Path(output_dir)
    return output_dir.parent / f"{output_dir.name}.journal.jsonl"


# -- replayed state ----------------------------------------------------------


@dataclass
class ModuleCommit:
    """A per-module COMMIT record: the transactional rewrite boundary."""

    module: str
    file_sha256: str
    result: dict


@dataclass
class JournalState:
    """Everything :meth:`ProbeJournal.replay` reconstructs from disk."""

    path: Path
    app: str | None = None
    fingerprint: dict | None = None
    workspace_ready: bool = False
    plan: list[str] | None = None
    committed: dict[str, ModuleCommit] = field(default_factory=dict)
    probes: dict[str, dict[str, bool]] = field(default_factory=dict)
    #: Candidate hashes journaled with *conflicting* verdicts — excluded
    #: from the replay cache so resume re-probes them live (and the flaky
    #: quorum, if enabled, adjudicates).
    conflicts: dict[str, set[str]] = field(default_factory=dict)
    in_progress: str | None = None
    run_committed: bool = False
    manifest: dict[str, str] | None = None
    verify_passed: bool | None = None
    torn_tail: bool = False
    records: int = 0

    def seeds_for(self, module: str) -> dict[str, bool]:
        """The journal-sourced DD cache for *module* (hash → verdict)."""
        return dict(self.probes.get(module, {}))

    @property
    def probe_count(self) -> int:
        return sum(len(v) for v in self.probes.values())


# -- the journal -------------------------------------------------------------


class ProbeJournal:
    """Append-only, fsync'd JSONL write-ahead journal for one trim run.

    Use :meth:`create` to start a fresh run (truncates any previous
    journal at *path*) or :meth:`open_resume` to append to an existing
    one.  Every record is one JSON object per line with a ``type`` field;
    appends are flushed and fsync'd so the journal survives SIGKILL at any
    boundary with at most a torn final line.
    """

    def __init__(self, path: Path, *, fsync: bool = True, _mode: str = "ab"):
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, _mode)
        self._closed = False
        if self.fsync:
            _fsync_dir(self.path.parent)

    @classmethod
    def create(cls, path: Path, *, fsync: bool = True) -> "ProbeJournal":
        """Open a fresh journal, truncating whatever was at *path*."""
        return cls(path, fsync=fsync, _mode="wb")

    @classmethod
    def open_resume(cls, path: Path, *, fsync: bool = True) -> "ProbeJournal":
        """Open an existing journal for appending (resume)."""
        path = Path(path)
        if not path.exists():
            raise JournalError(f"cannot resume: journal not found: {path}")
        return cls(path, fsync=fsync, _mode="ab")

    # -- low-level append --------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record (one JSON line)."""
        global _append_count
        if self._closed:
            raise JournalError(f"journal is closed: {self.path}")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line.encode("utf-8") + b"\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        if _post_append_hook is not None:
            _append_count += 1
            _post_append_hook(_append_count)

    def close(self) -> None:
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "ProbeJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- record constructors -----------------------------------------------

    def run_begin(self, app: str, fingerprint: Mapping) -> None:
        self.append(
            {
                "type": "run_begin",
                "version": JOURNAL_VERSION,
                "app": app,
                "fingerprint": dict(fingerprint),
            }
        )

    def workspace_ready(self) -> None:
        """The working bundle clone is complete; probes may start."""
        self.append({"type": "workspace_ready"})

    def plan(self, modules: list[str]) -> None:
        """The ranked module list this run will debloat, in order."""
        self.append({"type": "plan", "modules": list(modules)})

    def module_begin(self, module: str) -> None:
        self.append({"type": "module_begin", "module": module})

    def record_probe(
        self,
        module: str,
        candidate: str,
        verdict: bool,
        *,
        granularity: int,
        seed: int,
    ) -> None:
        self.append(
            {
                "type": "probe",
                "module": module,
                "candidate": candidate,
                "verdict": bool(verdict),
                "granularity": granularity,
                "seed": seed,
            }
        )

    def module_commit(self, module: str, file_sha256: str, result: dict) -> None:
        self.append(
            {
                "type": "module_commit",
                "module": module,
                "file_sha256": file_sha256,
                "result": result,
            }
        )

    def run_commit(self, manifest: Mapping[str, str], verify_passed: bool) -> None:
        self.append(
            {
                "type": "run_commit",
                "manifest": dict(manifest),
                "verify_passed": bool(verify_passed),
            }
        )

    # -- replay -------------------------------------------------------------

    @classmethod
    def replay(cls, path: Path) -> JournalState:
        """Parse *path* into a :class:`JournalState`.

        Replay is idempotent and — for probe records — order-insensitive:
        the reconstructed cache maps each ``(module, candidate)`` to its
        journaled verdict regardless of record order or duplication.  A
        candidate journaled with *conflicting* verdicts is dropped from
        the cache (and reported in ``state.conflicts``) so it re-probes
        live.  A torn final line (the only tear a crash can produce under
        the append+fsync discipline) is skipped and flagged; a malformed
        interior line raises :class:`~repro.errors.JournalError`.
        """
        path = Path(path)
        if not path.exists():
            raise JournalError(f"journal not found: {path}")
        raw = path.read_bytes()
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()

        state = JournalState(path=path)
        verdict_sets: dict[tuple[str, str], set[bool]] = {}
        last = len(lines) - 1
        for i, line in enumerate(lines):
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict) or "type" not in record:
                    raise ValueError("record is not an object with a 'type'")
            except (ValueError, UnicodeDecodeError) as exc:
                if i == last:
                    # Torn final record: the crash hit mid-append.
                    state.torn_tail = True
                    break
                raise JournalError(
                    f"corrupt journal record at {path}:{i + 1}: {exc}"
                ) from exc
            # A complete final record without its newline is intact —
            # only a parse failure above marks the tail as torn.
            cls._apply(state, record, verdict_sets)
            state.records += 1

        # Conflicting duplicate verdicts poison the hash (flaky oracle or
        # tampering): keep only unanimously-journaled candidates.
        for (module, candidate), verdicts in verdict_sets.items():
            if len(verdicts) == 1:
                state.probes.setdefault(module, {})[candidate] = next(
                    iter(verdicts)
                )
            else:
                state.conflicts.setdefault(module, set()).add(candidate)
        return state

    @staticmethod
    def _apply(
        state: JournalState,
        record: dict,
        verdict_sets: dict[tuple[str, str], set[bool]],
    ) -> None:
        kind = record.get("type")
        if kind == "run_begin":
            # A restart within the same file resets everything before it.
            state.app = record.get("app")
            state.fingerprint = record.get("fingerprint")
            state.workspace_ready = False
            state.plan = None
            state.committed.clear()
            state.in_progress = None
            state.run_committed = False
            state.manifest = None
            verdict_sets.clear()
            state.probes.clear()
            state.conflicts.clear()
        elif kind == "workspace_ready":
            state.workspace_ready = True
        elif kind == "plan":
            state.plan = list(record.get("modules", []))
        elif kind == "module_begin":
            module = record.get("module")
            if module not in state.committed:
                state.in_progress = module
        elif kind == "probe":
            module = record.get("module", "")
            candidate = record.get("candidate", "")
            verdict_sets.setdefault((module, candidate), set()).add(
                bool(record.get("verdict"))
            )
        elif kind == "module_commit":
            module = record.get("module", "")
            state.committed[module] = ModuleCommit(
                module=module,
                file_sha256=record.get("file_sha256", ""),
                result=record.get("result", {}),
            )
            if state.in_progress == module:
                state.in_progress = None
        elif kind == "run_commit":
            state.run_committed = True
            state.manifest = dict(record.get("manifest", {}))
            state.verify_passed = record.get("verify_passed")
        # Unknown record types are ignored (forward compatibility).


# -- recovery ----------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What integrity verification found (and fixed) on resume."""

    verified: list[str] = field(default_factory=list)
    rolled_back: list[str] = field(default_factory=list)
    restored_in_progress: str | None = None
    stale_files_removed: int = 0

    def summary(self) -> str:
        return (
            f"{len(self.verified)} module(s) verified, "
            f"{len(self.rolled_back)} rolled back, "
            f"{self.stale_files_removed} stale file(s) removed"
        )


def recover_workspace(working, pristine, state: JournalState) -> RecoveryReport:
    """Verify and repair a crashed working bundle before resuming.

    * every journaled COMMIT is hash-checked against the file on disk; a
      torn/corrupted module is rolled back to the pristine source and its
      commit dropped (so DD re-runs it against the journaled probe cache);
    * the in-progress module (BEGIN without COMMIT) is restored to the
      pristine source — a crash mid-DD leaves it in an arbitrary candidate
      state;
    * orphaned backup/temp files from interrupted runs are removed.

    After recovery every module in the bundle is either pristine or
    exactly its committed content: the per-module atomicity guarantee.
    """
    report = RecoveryReport()
    report.stale_files_removed = len(cleanup_stale_artifacts(working.root))

    for module, commit in list(state.committed.items()):
        try:
            on_disk = file_sha256(working.module_file(module))
        except Exception:
            on_disk = None
        if on_disk != commit.file_sha256:
            _restore_pristine(working, pristine, module)
            del state.committed[module]
            report.rolled_back.append(module)
        else:
            report.verified.append(module)

    if state.in_progress and state.in_progress not in state.committed:
        _restore_pristine(working, pristine, state.in_progress)
        report.restored_in_progress = state.in_progress
    return report


def _restore_pristine(working, pristine, module: str) -> None:
    """Overwrite *module* in the working bundle with its pristine source.

    The target path is derived from the pristine layout, so restoration
    works even when the working copy of the file was deleted outright.
    """
    pristine_file = pristine.module_file(module)
    source = pristine_file.read_text(encoding="utf-8")
    target = working.root / pristine_file.relative_to(pristine.root)
    target.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(target, source, durable=True)
