"""Subprocess oracle execution: the paper's faithful isolation mode.

Section 7: "A-TRIM imports modules in isolation.  Specifically, a new
process is spawned in both the static analysis and the profiling phase.
A new process is also spawned for each run of DD."

The in-process executor (:mod:`repro.core.execution`) provides equivalent
isolation by evicting modules between runs and is ~100x faster, so it is
the default.  This module offers real OS-level process isolation for
callers that want it — each oracle probe launches a fresh interpreter,
imports the bundle there, and ships the observables back as JSON.

Use with the oracle runner::

    runner = OracleRunner(bundle, run=subprocess_run)
"""

from __future__ import annotations

import json
import subprocess
import sys
from typing import Any

from repro.bundle import AppBundle
from repro.core._oracle_child import SENTINEL
from repro.errors import OracleError, OracleTimeout
from repro.vm import exec_cost

__all__ = ["subprocess_run", "run_in_subprocess"]

DEFAULT_TIMEOUT_S = 60.0


def run_in_subprocess(
    bundle: AppBundle,
    event: Any,
    context: Any = None,
    *,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> dict:
    """Execute one cold start in a fresh interpreter; returns the child's
    full result dict (observable + metering fields)."""
    payload = json.dumps({"event": event, "context": context})
    try:
        completed = subprocess.run(
            [sys.executable, "-m", "repro.core._oracle_child", str(bundle.root)],
            input=payload,
            capture_output=True,
            text=True,
            timeout=timeout_s,
        )
    except subprocess.TimeoutExpired as exc:
        raise OracleTimeout(
            f"oracle probe for {bundle.name} exceeded {timeout_s}s"
        ) from exc

    for line in completed.stdout.splitlines():
        if line.startswith(SENTINEL):
            return json.loads(line[len(SENTINEL):])
    raise OracleError(
        f"oracle child for {bundle.name} produced no result "
        f"(exit {completed.returncode}): {completed.stderr.strip()[:500]}"
    )


def subprocess_run(bundle: AppBundle, event: Any, context: Any = None) -> dict:
    """``RunFn``-shaped adapter for :class:`~repro.core.oracle.OracleRunner`.

    Charges the child's measured virtual time to the caller's active
    meters so debloat-time accounting works identically to the in-process
    runner.
    """
    result = run_in_subprocess(bundle, event, context)
    virtual = result.get("init_time_s", 0.0) + result.get("exec_time_s", 0.0)
    if virtual:
        exec_cost(f"subprocess:{bundle.name}", time_s=virtual)
    return result["observable"]
