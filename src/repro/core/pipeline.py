"""The λ-trim pipeline: static analysis → profiling → debloating (Figure 3).

:class:`LambdaTrim` wires the three architecture components together:

1. the **static analyzer** finds the external modules the application
   imports, and the **call graph** marks the attributes it definitely
   accesses (excluded from DD);
2. the **profiler** measures every initialization import and ranks modules
   by marginal monetary cost (Eq. 2), keeping the top K;
3. the **debloater** runs attribute-granularity DD over each selected
   module against the oracle specification.

The output is a new bundle directory, directly deployable to the platform
emulator, plus a :class:`DebloatReport` with everything Tables 3 and the
figures need.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.bundle import AppBundle
from repro.core.callgraph import CallGraph, build_bundle_call_graph, build_call_graph
from repro.core.cost_model import ProfileReport, ScoringMethod, rank_modules
from repro.core.debloater import ModuleDebloater, ModuleDebloatResult
from repro.core.granularity import GRANULARITY_ATTRIBUTE, GRANULARITY_STATEMENT
from repro.core.journal import (
    JOURNAL_VERSION,
    JournalState,
    ProbeJournal,
    default_journal_path,
    file_sha256,
    recover_workspace,
    text_sha256,
)
from repro.core.oracle import OracleRunner, OracleSpec
from repro.core.profiler import profile_bundle
from repro.core.static_analyzer import analyze_source
from repro.errors import DebloatError
from repro.obs import get_recorder

__all__ = ["TrimConfig", "DebloatReport", "LambdaTrim"]

DEFAULT_K = 20  # "Unless otherwise noted, we use K = 20" (Section 8).


@dataclass(frozen=True)
class TrimConfig:
    """Tunable knobs of the pipeline.

    ``k`` and ``scoring`` are the Section 8.2/8.4 ablation axes;
    ``use_call_graph`` disables the PyCG pre-filtering for the call-graph
    ablation; ``max_oracle_calls_per_module`` bounds each DD search.
    """

    k: int = DEFAULT_K
    scoring: ScoringMethod = ScoringMethod.COMBINED
    seed: int = 0
    use_call_graph: bool = True
    record_trace: bool = False
    max_oracle_calls_per_module: int | None = None
    local_modules: frozenset[str] = frozenset()
    # Section 6.1's design axis: "attribute" (λ-trim) or "statement".
    granularity: str = GRANULARITY_ATTRIBUTE
    # Flaky-oracle defence: re-check journal-sourced verdicts live and
    # adjudicate disagreements with a majority vote over ``probe_quorum``
    # runs.  Off by default — the journal is trusted, which keeps resume
    # re-probe counts bounded.
    verify_journal_probes: bool = False
    probe_quorum: int = 3

    def __post_init__(self) -> None:
        if self.k < 0:
            raise DebloatError(f"k must be non-negative, got {self.k}")
        if self.granularity not in (GRANULARITY_ATTRIBUTE, GRANULARITY_STATEMENT):
            raise DebloatError(f"unknown granularity: {self.granularity!r}")
        if self.probe_quorum < 1:
            raise DebloatError(
                f"probe_quorum must be positive, got {self.probe_quorum}"
            )


@dataclass
class DebloatReport:
    """Everything λ-trim learned and did to one application."""

    app: str
    output_root: Path
    external_modules: list[str]
    profile: ProfileReport
    ranked_modules: list[str]
    module_results: list[ModuleDebloatResult] = field(default_factory=list)
    wall_time_s: float = 0.0
    # Post-debloat oracle verdict on the final output bundle; None when the
    # verification stage did not run (e.g. reports built by hand in tests).
    verify_passed: bool | None = None
    # Write-ahead probe journal backing this run; None for reports built
    # by hand in tests.
    journal_path: Path | None = None
    # True when the run was resumed from an interrupted journal.
    resumed: bool = False

    @property
    def output(self) -> AppBundle:
        return AppBundle(self.output_root)

    @property
    def debloat_time_s(self) -> float:
        """Total virtual oracle-execution time (Table 3's debloating time)."""
        return sum(result.debloat_time_s for result in self.module_results)

    @property
    def oracle_calls(self) -> int:
        return sum(result.oracle_calls for result in self.module_results)

    @property
    def attributes_removed(self) -> int:
        return sum(result.removed_count for result in self.module_results)

    @property
    def journal_hits(self) -> int:
        """Probes answered from the write-ahead journal instead of live runs."""
        return sum(result.journal_hits for result in self.module_results)

    @property
    def flaky_probes(self) -> int:
        """Live probes that disagreed with a journaled verdict (quorum-voted)."""
        return sum(result.flaky_probes for result in self.module_results)

    @property
    def resumed_modules(self) -> int:
        """Modules reconstructed wholesale from journaled COMMIT records."""
        return sum(1 for result in self.module_results if result.resumed)

    def telemetry_meta(self) -> dict:
        """JSON-safe run metadata for ``TelemetrySink.set_meta("debloat", …)``.

        The fleet dashboard renders this as a one-line robustness summary
        (resume provenance + flaky-probe count) next to the breaker state.
        """
        return {
            "app": self.app,
            "resumed": self.resumed,
            "resumed_modules": self.resumed_modules,
            "journal_hits": self.journal_hits,
            "flaky_probes": self.flaky_probes,
            "oracle_calls": self.oracle_calls,
            "attributes_removed": self.attributes_removed,
            "verify_passed": self.verify_passed,
        }

    def result_for(self, module: str) -> ModuleDebloatResult | None:
        for result in self.module_results:
            if result.module == module:
                return result
        return None

    def representative_module(self) -> ModuleDebloatResult | None:
        """The module with the most removed attributes (Table 3's example)."""
        candidates = [r for r in self.module_results if not r.skipped]
        if not candidates:
            return None
        return max(candidates, key=lambda r: (r.removed_count, r.module))

    def summary(self) -> str:
        lines = [
            f"lambda-trim report for {self.app}",
            f"  modules profiled: {len(self.profile)}",
            f"  modules debloated: {len(self.module_results)}",
            f"  attributes removed: {self.attributes_removed}",
            f"  oracle calls: {self.oracle_calls}",
            f"  debloat time (virtual): {self.debloat_time_s:.1f}s",
        ]
        if self.verify_passed is not None:
            lines.append(
                f"  verification: {'passed' if self.verify_passed else 'FAILED'}"
            )
        if self.resumed:
            lines.append(
                f"  resumed: {self.resumed_modules} module(s) from journal, "
                f"{self.journal_hits} journaled probe(s) replayed"
            )
        if self.flaky_probes:
            lines.append(f"  flaky probes (quorum-voted): {self.flaky_probes}")
        for result in self.module_results:
            lines.append(f"    {result.summary()}")
        return "\n".join(lines)


class LambdaTrim:
    """The automated pipeline of Figure 3."""

    def __init__(self, config: TrimConfig | None = None):
        self.config = config if config is not None else TrimConfig()

    # -- pipeline stages -----------------------------------------------------

    def analyze(self, bundle: AppBundle) -> tuple[list[str], CallGraph]:
        """Stage 1: imported external modules + definitely-used attributes."""
        source = bundle.handler_source()
        analysis = analyze_source(source, filename=str(bundle.handler_path))
        local = set(self.config.local_modules) | {bundle.manifest.handler_module}
        external = analysis.external_modules(local_modules=local)
        graph = build_call_graph(source, filename=str(bundle.handler_path))
        return external, graph

    def profile(self, bundle: AppBundle, external: list[str]) -> ProfileReport:
        """Stage 2: marginal import time/memory per module (Section 5.2).

        Profiles *every* module the initialization imports — including
        transitive dependencies the handler never names (Table 3 debloats
        numpy for dna-visualization even though the app imports squiggle) —
        restricted to packages shipped in the bundle's site-packages.
        """
        shipped = tuple(bundle.installed_packages())
        return profile_bundle(bundle, restrict_to=list(shipped))

    def select_modules(self, bundle: AppBundle, report: ProfileReport) -> list[str]:
        """Top-K debloating candidates that actually have source files."""
        ranked = rank_modules(
            report,
            method=self.config.scoring,
            seed=self.config.seed,
        )
        selected: list[str] = []
        for profile in ranked:
            if len(selected) >= self.config.k:
                break
            if bundle.has_module(profile.module):
                selected.append(profile.module)
        return selected

    def run(
        self,
        bundle: AppBundle,
        output_dir: Path | str,
        *,
        seeds: dict[str, list[str]] | None = None,
        resume: bool = False,
        journal_path: Path | str | None = None,
        journal_fsync: bool = True,
    ) -> DebloatReport:
        """Run the full pipeline; the optimized bundle lands in *output_dir*.

        ``seeds`` maps module names to the kept attribute sets of a
        previous run (continuous debloating, Section 9); see
        :class:`repro.core.incremental.IncrementalTrim`.

        Every run write-ahead journals its DD probes and per-module
        commits to ``journal_path`` (default: next to *output_dir*).  With
        ``resume=True`` a journal left by an interrupted run is replayed:
        committed modules are adopted wholesale, the workspace is
        integrity-checked (torn modules rolled back to pristine), and the
        DD search continues from the journaled probe cache — producing the
        same output bundle as an uninterrupted run.  ``journal_fsync``
        trades crash durability for speed (tests / throwaway workspaces).
        """
        wall_start = time.perf_counter()
        output_dir = Path(output_dir)
        journal_path = (
            Path(journal_path)
            if journal_path is not None
            else default_journal_path(output_dir)
        )
        recorder = get_recorder()

        with recorder.span("pipeline.run", label=bundle.name, k=self.config.k):
            with recorder.span("analyze") as span:
                external, graph = self.analyze(bundle)
                if span is not None:
                    span.set_attr("external_modules", len(external))

            with recorder.span("profile") as span:
                report = self.profile(bundle, external)
                if span is not None:
                    span.set_attr("modules_profiled", len(report))
                    span.set_attr("init_virtual_s", round(report.total_time_s, 6))

            with recorder.span("rank") as span:
                selected = self.select_modules(bundle, report)
                if span is not None:
                    span.set_attr("selected", len(selected))
            recorder.counter_add("pipeline.modules_selected", len(selected))

            fingerprint = self._fingerprint(bundle)
            state: JournalState | None = None
            if resume:
                state = self._load_resume_state(
                    journal_path, fingerprint, selected, output_dir
                )

            if state is not None:
                journal = ProbeJournal.open_resume(
                    journal_path, fsync=journal_fsync
                )
                working = AppBundle(output_dir)
                with recorder.span("recover", label=bundle.name) as span:
                    recovery = recover_workspace(working, bundle, state)
                    if span is not None:
                        span.set_attr("verified", len(recovery.verified))
                        span.set_attr("rolled_back", len(recovery.rolled_back))
                        span.set_attr("stale_files", recovery.stale_files_removed)
                recorder.counter_add(
                    "pipeline.modules_rolled_back", len(recovery.rolled_back)
                )
            else:
                # Fresh start — also the fallback when a resume request
                # finds an unusable journal (crash mid-clone, changed plan).
                if resume and output_dir.exists():
                    shutil.rmtree(output_dir)
                journal = ProbeJournal.create(journal_path, fsync=journal_fsync)
                journal.run_begin(bundle.name, fingerprint)
                working = bundle.clone(output_dir)
                journal.workspace_ready()
                journal.plan(selected)

            spec = OracleSpec.from_bundle(bundle)
            runner = OracleRunner(bundle, spec)
            debloater = ModuleDebloater(
                working,
                runner,
                record_trace=self.config.record_trace,
                max_oracle_calls_per_module=self.config.max_oracle_calls_per_module,
                granularity=self.config.granularity,
                journal=journal,
                seed=self.config.seed,
                verify_seeds=self.config.verify_journal_probes,
                quorum=self.config.probe_quorum,
            )

            try:
                results: list[ModuleDebloatResult] = []
                for module in selected:
                    commit = state.committed.get(module) if state else None
                    if commit is not None:
                        outcome = ModuleDebloatResult.from_dict(commit.result)
                        outcome.resumed = True
                        results.append(outcome)
                        recorder.counter_add("pipeline.modules_resumed")
                        continue
                    with recorder.span("debloat", label=module) as span:
                        outcome, graph = self._debloat_one(
                            working,
                            debloater,
                            graph,
                            module,
                            seeds,
                            journal_seeds=(
                                state.seeds_for(module) if state else None
                            ),
                        )
                        if span is not None:
                            span.set_attr("removed", outcome.removed_count)
                            span.set_attr("oracle_calls", outcome.oracle_calls)
                            if outcome.journal_hits:
                                span.set_attr("journal_hits", outcome.journal_hits)
                            if outcome.skipped:
                                span.set_attr("skipped", outcome.skipped_reason)
                    results.append(outcome)
                recorder.counter_add("pipeline.modules_debloated", len(results))
                recorder.counter_add(
                    "pipeline.attributes_removed",
                    sum(r.removed_count for r in results),
                )

                # Image size barely changes (only __init__ files shrink);
                # keep the declared size so unbilled transmission modelling
                # stays comparable.
                manifest = working.manifest
                manifest.external_modules = external
                working.write_manifest(manifest)

                # Final safety check: the bundle we are about to hand out
                # must still satisfy the full oracle (DD validated each
                # module in isolation; this validates their composition).
                with recorder.span("verify", cases=len(spec)) as span:
                    verify_passed = runner.check(working).passed
                    if span is not None:
                        span.set_attr("passed", verify_passed)

                journal.run_commit(
                    self._content_manifest(working, results), verify_passed
                )
            finally:
                journal.close()

        return DebloatReport(
            app=bundle.name,
            output_root=working.root,
            external_modules=external,
            profile=report,
            ranked_modules=selected,
            module_results=results,
            wall_time_s=time.perf_counter() - wall_start,
            verify_passed=verify_passed,
            journal_path=journal_path,
            resumed=state is not None,
        )

    def _fingerprint(self, bundle: AppBundle) -> dict:
        """Identity of a run: journal replays only match the same trim.

        The handler source and the config knobs that steer selection and
        search are enough — a changed bundle or config must not silently
        adopt another run's probes.
        """
        return {
            "version": JOURNAL_VERSION,
            "app": bundle.name,
            "handler_sha256": text_sha256(bundle.handler_source()),
            "k": self.config.k,
            "scoring": self.config.scoring.value,
            "seed": self.config.seed,
            "use_call_graph": self.config.use_call_graph,
            "granularity": self.config.granularity,
            "max_oracle_calls_per_module": self.config.max_oracle_calls_per_module,
        }

    def _load_resume_state(
        self,
        journal_path: Path,
        fingerprint: dict,
        selected: list[str],
        output_dir: Path,
    ) -> JournalState | None:
        """Replay the journal if it matches this run; None → fresh start.

        A fingerprint mismatch is an error (the caller asked to resume a
        *different* trim); an absent/immature journal or a changed module
        plan silently restarts — there is nothing usable to resume.
        """
        if not journal_path.exists():
            return None
        state = ProbeJournal.replay(journal_path)
        if state.fingerprint is not None and state.fingerprint != fingerprint:
            raise DebloatError(
                f"cannot resume from {journal_path}: it records a different "
                "run (bundle or TrimConfig changed); start a fresh trim"
            )
        if state.fingerprint is None or not state.workspace_ready:
            return None  # crashed before the workspace clone finished
        if not output_dir.exists():
            return None
        if state.plan != selected:
            return None  # ranking changed; journaled probes don't apply
        return state

    @staticmethod
    def _content_manifest(
        working: AppBundle, results: list[ModuleDebloatResult]
    ) -> dict[str, str]:
        """module → sha256 of its final file, for every rewritten module."""
        manifest: dict[str, str] = {}
        for result in results:
            if result.skipped:
                continue
            manifest[result.module] = file_sha256(
                working.module_file(result.module)
            )
        return manifest

    def _debloat_one(
        self,
        working: AppBundle,
        debloater: ModuleDebloater,
        graph: CallGraph,
        module: str,
        seeds: dict[str, list[str]] | None,
        *,
        journal_seeds: dict[str, bool] | None = None,
    ) -> tuple[ModuleDebloatResult, CallGraph]:
        """Debloat one selected module against the current working bundle."""
        # Recompute the whole-program graph against the *current* state
        # of the working bundle: attributes that were only referenced by
        # an already-removed re-export are now free to go.
        if self.config.use_call_graph:
            graph = build_bundle_call_graph(working)
        protected = self._protected_attributes(graph, module)
        if protected is None:
            # Star import: every attribute may be used; skip the module.
            return (
                ModuleDebloatResult(
                    module=module,
                    file=working.module_file(module),
                    attributes_before=0,
                    attributes_after=0,
                    skipped_reason="star-imported: all attributes protected",
                ),
                graph,
            )
        current_graph = graph

        def reexport_protected(component) -> bool:
            # Keep ``from m import a`` when the program definitely
            # accesses attribute ``a`` of module ``m`` (PyCG guidance).
            if not component.source or not self.config.use_call_graph:
                return False
            return component.name in current_graph.accessed_attributes(
                component.source
            )

        return (
            debloater.debloat_module(
                module,
                protected,
                extra_protected=reexport_protected,
                seed_keep=seeds.get(module) if seeds else None,
                journal_seeds=journal_seeds,
            ),
            graph,
        )

    def _protected_attributes(self, graph: CallGraph, module: str) -> set[str] | None:
        """Attributes of *module* that DD must not touch (None = all)."""
        if not self.config.use_call_graph:
            return set()
        if graph.protects_everything(module):
            return None
        return graph.accessed_attributes(module)
