"""Child process entry point for the subprocess oracle runner.

Usage (spawned by :mod:`repro.core.subprocess_runner`)::

    python -m repro.core._oracle_child <bundle-root>

The (event, context) payload arrives as JSON on stdin; the full execution
result — observables plus metering — is printed as one JSON object on
stdout, prefixed by a sentinel so the handler's own prints cannot be
confused with the protocol.
"""

from __future__ import annotations

import json
import sys

SENTINEL = "@@LAMBDA_TRIM_RESULT@@"


def main() -> int:
    from repro.bundle import AppBundle
    from repro.core.execution import run_once

    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <bundle-root>", file=sys.stderr)
        return 2

    payload = json.loads(sys.stdin.read())
    bundle = AppBundle(sys.argv[1])
    result = run_once(bundle, payload.get("event"), payload.get("context"))

    output = {
        "observable": result.observable(),
        "init_time_s": result.init_time_s,
        "exec_time_s": result.exec_time_s,
        "init_memory_mb": result.init_memory_mb,
        "peak_memory_mb": result.peak_memory_mb,
    }
    print(SENTINEL + json.dumps(output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
