"""Isolated execution of application bundles (module isolation, Section 7).

The paper spawns a fresh process for each profiling/DD run so Python's
module cache cannot leak state between measurements.  This module provides
the same guarantee in-process — the default, fast path — by snapshotting
``sys.modules``/``sys.path`` around each load and evicting every module the
load introduced.  Evicted module objects stay alive while a
:class:`LoadedApp` references them, which is exactly how a warm serverless
instance behaves: the initialized state persists, invisible to other
instances.

A subprocess runner with identical semantics lives in
:mod:`repro.core.subprocess_runner` for callers that want real OS-level
isolation (the paper's faithful mode).
"""

from __future__ import annotations

import importlib
import io
import sys
import traceback
from contextlib import contextmanager, redirect_stdout
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.bundle import AppBundle
from repro.errors import InvocationError
from repro.vm import Meter, metered

__all__ = ["ExecutionResult", "InvocationOutput", "LoadedApp", "run_once"]


@dataclass
class InvocationOutput:
    """Observable effects of a single handler invocation."""

    value: Any
    stdout: str
    exec_time_s: float
    error: str | None = None
    error_type: str | None = None
    external_calls: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None

    def observable(self) -> dict:
        """What the oracle compares: return value, stdout, and the
        intercepted external-service calls (Section 5.3)."""
        return {
            "value": self.value,
            "stdout": self.stdout,
            "error_type": self.error_type,
            "external": [
                [call.service, call.payload] for call in self.external_calls
            ],
        }


@dataclass
class ExecutionResult:
    """Full cold-start execution: initialization plus one invocation."""

    init_time_s: float
    init_memory_mb: float
    peak_memory_mb: float
    invocation: InvocationOutput | None
    init_error: str | None = None
    init_error_type: str | None = None
    init_external_calls: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.init_error is None and (
            self.invocation is not None and self.invocation.ok
        )

    @property
    def exec_time_s(self) -> float:
        return self.invocation.exec_time_s if self.invocation else 0.0

    def observable(self) -> dict:
        """What the oracle compares across original/debloated runs."""
        if self.init_error is not None:
            return {"init_error_type": self.init_error_type}
        assert self.invocation is not None
        observed = self.invocation.observable()
        observed["init_external"] = list(self.init_external_calls)
        return observed


@contextmanager
def isolated_imports(paths: list[str]) -> Iterator[dict[str, Any]]:
    """Import-isolation scope: fresh module cache for *paths*.

    Yields a dict that, on exit, holds every module the scope introduced
    (the scope's private module cache).  Pre-existing modules — the stdlib,
    ``repro`` itself — are untouched.
    """
    before = set(sys.modules)
    saved_path = list(sys.path)
    sys.path[:0] = paths
    importlib.invalidate_caches()
    introduced: dict[str, Any] = {}
    try:
        yield introduced
    finally:
        for name in list(sys.modules):
            if name not in before:
                introduced[name] = sys.modules.pop(name)
        sys.path[:] = saved_path


class LoadedApp:
    """A loaded function instance: initialized state plus a callable handler.

    Mirrors a warm serverless instance.  ``load()`` performs Function
    Initialization (imports, init code) under the instance meter;
    ``invoke()`` runs the handler on an event.  The instance keeps its
    imported modules privately so concurrent instances never share state.
    """

    def __init__(self, bundle: AppBundle, *, meter: Meter | None = None):
        self.bundle = bundle
        self.meter = meter if meter is not None else Meter(f"app:{bundle.name}")
        self._modules: dict[str, Any] = {}
        self._handler = None
        self._loaded = False
        self.init_error: str | None = None
        self.init_error_type: str | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def loaded(self) -> bool:
        return self._loaded and self.init_error is None

    @property
    def init_time_s(self) -> float:
        return self._init_time_s if self._loaded else 0.0

    @property
    def init_memory_mb(self) -> float:
        return self._init_memory_mb if self._loaded else 0.0

    @property
    def peak_memory_mb(self) -> float:
        return self.meter.peak_mb

    def _paths(self) -> list[str]:
        return [str(self.bundle.site_packages), str(self.bundle.root)]

    def load(self) -> None:
        """Run Function Initialization: import the handler module."""
        if self._loaded:
            raise InvocationError("instance already initialized")
        manifest = self.bundle.manifest
        stdout = io.StringIO()
        with isolated_imports(self._paths()) as introduced:
            with metered(self.meter):
                try:
                    with redirect_stdout(stdout):
                        module = importlib.import_module(manifest.handler_module)
                    self._handler = getattr(module, manifest.handler_function)
                except BaseException as exc:  # import errors must not kill the host
                    self.init_error = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                    self.init_error_type = type(exc).__name__
        self._modules = introduced
        self._init_time_s = self.meter.time_s
        self._init_memory_mb = self.meter.live_mb
        self.init_stdout = stdout.getvalue()
        self.init_external_calls = [
            [call.service, call.payload] for call in self.meter.external_calls
        ]
        self._loaded = True

    def invoke(self, event: Any, context: Any = None) -> InvocationOutput:
        """Invoke the handler on *event* (a warm start once loaded)."""
        if not self._loaded:
            raise InvocationError("instance not initialized; call load() first")
        if self.init_error is not None:
            raise InvocationError(f"instance failed to initialize: {self.init_error}")

        before = self.meter.time_s
        external_before = len(self.meter.external_calls)
        stdout = io.StringIO()
        error: str | None = None
        error_type: str | None = None
        value: Any = None

        # Re-expose the instance's private modules so lazy imports inside the
        # handler resolve against this instance's state.
        overlap = {
            name: sys.modules[name] for name in self._modules if name in sys.modules
        }
        sys.modules.update(self._modules)
        saved_path = list(sys.path)
        sys.path[:0] = self._paths()
        try:
            with metered(self.meter):
                try:
                    with redirect_stdout(stdout):
                        value = self._handler(event, context if context is not None else {})
                except BaseException as exc:
                    error = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                    error_type = type(exc).__name__
        finally:
            for name in self._modules:
                if name in overlap:
                    sys.modules[name] = overlap[name]
                else:
                    sys.modules.pop(name, None)
            sys.path[:] = saved_path

        return InvocationOutput(
            value=value,
            stdout=stdout.getvalue(),
            exec_time_s=self.meter.time_s - before,
            error=error,
            error_type=error_type,
            external_calls=list(self.meter.external_calls[external_before:]),
        )

    def close(self) -> None:
        """Tear the instance down, releasing its initialized state."""
        self._modules.clear()
        self._handler = None


def run_once(bundle: AppBundle, event: Any, context: Any = None) -> ExecutionResult:
    """Cold start + single invocation + teardown (one oracle probe)."""
    app = LoadedApp(bundle)
    app.load()
    if app.init_error is not None:
        result = ExecutionResult(
            init_time_s=app.init_time_s,
            init_memory_mb=app.init_memory_mb,
            peak_memory_mb=app.peak_memory_mb,
            invocation=None,
            init_error=app.init_error,
            init_error_type=app.init_error_type,
        )
        app.close()
        return result
    invocation = app.invoke(event, context)
    result = ExecutionResult(
        init_time_s=app.init_time_s,
        init_memory_mb=app.init_memory_mb,
        peak_memory_mb=app.peak_memory_mb,
        invocation=invocation,
        init_external_calls=app.init_external_calls,
    )
    app.close()
    return result
