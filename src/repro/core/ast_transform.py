"""Rebuild a module's source keeping only a subset of its attributes.

This implements the per-iteration transformation of Section 6.3: "the
original ``__init__.py`` file is retrieved and then modified based on the
attributes that DD currently tests.  The modification is achieved with a
single traversal of the AST."

Given a :class:`~repro.core.granularity.ModuleDecomposition` and the set of
components to keep, :func:`rebuild_source` emits new source in which

* pinned statements are preserved verbatim (positionally),
* ``def`` / ``class`` / assignment components are dropped when not kept,
* ``import`` statements keep only the kept aliases, and
* ``from m import a, b`` statements keep only the kept names — the whole
  statement (and therefore the import of ``m``) disappears when none
  survive, exactly like Figure 7's debloated torch skipping
  ``torch.optim`` entirely.
"""

from __future__ import annotations

import ast
import copy
from typing import Iterable

from repro.core.granularity import (
    KIND_FROM_IMPORT,
    KIND_IMPORT,
    WHOLE_STATEMENT,
    AttributeComponent,
    ModuleDecomposition,
    is_magic_name,
)

__all__ = ["rebuild_source", "rebuild_tree", "removed_components"]


def removed_components(
    decomposition: ModuleDecomposition, keep: Iterable[AttributeComponent]
) -> list[AttributeComponent]:
    """Components of *decomposition* that are NOT in *keep*."""
    kept = set(keep)
    return [c for c in decomposition.components if c not in kept]


def rebuild_tree(
    decomposition: ModuleDecomposition, keep: Iterable[AttributeComponent]
) -> ast.Module:
    """Return a new AST containing only pinned statements and kept components."""
    kept = set(keep)
    kept_by_statement: dict[int, set[int]] = {}
    removable_by_statement: dict[int, set[int]] = {}
    for component in decomposition.components:
        removable_by_statement.setdefault(component.stmt_index, set()).add(
            component.alias_index
        )
        if component in kept:
            kept_by_statement.setdefault(component.stmt_index, set()).add(
                component.alias_index
            )

    new_body: list[ast.stmt] = []
    for index, stmt in enumerate(decomposition.tree.body):
        removable = removable_by_statement.get(index)
        if removable is None:
            new_body.append(copy.deepcopy(stmt))  # pinned statement
            continue
        kept_aliases = kept_by_statement.get(index, set())
        if WHOLE_STATEMENT in removable:
            # statement granularity: all-or-none (magic aliases persist)
            surviving = (
                _alias_indices(stmt)
                if WHOLE_STATEMENT in kept_aliases
                else _magic_alias_indices(stmt)
            )
        else:
            # Aliases never offered to DD (magic names) always stay.
            always_kept = _alias_indices(stmt) - removable
            surviving = kept_aliases | always_kept
        if not surviving:
            continue  # whole statement removed
        new_stmt = _filter_statement(stmt, surviving)
        if new_stmt is not None:
            new_body.append(new_stmt)

    module = ast.Module(body=new_body, type_ignores=[])
    return ast.fix_missing_locations(module)


def rebuild_source(
    decomposition: ModuleDecomposition, keep: Iterable[AttributeComponent]
) -> str:
    """Source text of the module rebuilt with only *keep* attributes.

    Fast path: statements that survive intact are copied verbatim from the
    original source (DD rewrites the file on every oracle query, so this
    is hot); only partially-kept import statements go through the AST
    unparser.
    """
    kept = set(keep)
    kept_by_statement: dict[int, set[int]] = {}
    removable_by_statement: dict[int, set[int]] = {}
    for component in decomposition.components:
        removable_by_statement.setdefault(component.stmt_index, set()).add(
            component.alias_index
        )
        if component in kept:
            kept_by_statement.setdefault(component.stmt_index, set()).add(
                component.alias_index
            )

    source_lines = decomposition.source.splitlines()
    chunks: list[str] = []
    for index, stmt in enumerate(decomposition.tree.body):
        removable = removable_by_statement.get(index)
        if removable is None:
            chunks.append(_statement_text(stmt, source_lines))
            continue
        all_aliases = _alias_indices(stmt)
        kept_aliases = kept_by_statement.get(index, set())
        if WHOLE_STATEMENT in removable:
            surviving = (
                all_aliases
                if WHOLE_STATEMENT in kept_aliases
                else _magic_alias_indices(stmt)
            )
        else:
            surviving = kept_aliases | (all_aliases - removable)
        if not surviving:
            continue
        if surviving == all_aliases:
            chunks.append(_statement_text(stmt, source_lines))
        else:
            filtered = _filter_statement(stmt, surviving)
            if filtered is not None:
                chunks.append(ast.unparse(ast.fix_missing_locations(filtered)))
    if not chunks:
        return ""
    return "\n".join(chunks) + "\n"


def _statement_text(stmt: ast.stmt, source_lines: list[str]) -> str:
    """Verbatim source text of one top-level statement (with decorators)."""
    start = stmt.lineno
    decorators = getattr(stmt, "decorator_list", None)
    if decorators:
        start = min(start, decorators[0].lineno)
    end = stmt.end_lineno if stmt.end_lineno is not None else stmt.lineno
    return "\n".join(source_lines[start - 1 : end])


def _magic_alias_indices(stmt: ast.stmt) -> set[int]:
    """Alias positions binding magic names (never offered to DD)."""
    if isinstance(stmt, ast.Import):
        return {
            i
            for i, alias in enumerate(stmt.names)
            if is_magic_name(alias.asname or alias.name.split(".")[0])
        }
    if isinstance(stmt, ast.ImportFrom):
        return {
            i
            for i, alias in enumerate(stmt.names)
            if is_magic_name(alias.asname or alias.name)
        }
    return set()


def _alias_indices(stmt: ast.stmt) -> set[int]:
    """All alias positions of an import statement ({0} for other kinds)."""
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        return set(range(len(stmt.names)))
    return {0}


def _filter_statement(stmt: ast.stmt, kept_aliases: set[int]) -> ast.stmt | None:
    """Keep only *kept_aliases* of an import statement (others keep whole)."""
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        new_stmt = copy.deepcopy(stmt)
        new_stmt.names = [
            alias for i, alias in enumerate(stmt.names) if i in kept_aliases
        ]
        if not new_stmt.names:
            return None
        return new_stmt
    # def / class / assign components are all-or-nothing (alias_index == 0),
    # so reaching here with a non-empty kept set means "keep the statement".
    return copy.deepcopy(stmt)
