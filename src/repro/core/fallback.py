"""Deployment with fallbacks (Section 5.4, evaluated in Section 8.7).

If an input ever reaches code that λ-trim removed, Python raises an
``AttributeError`` (module attribute gone) or ``NameError`` (module-level
binding gone).  The fallback wrapper catches these, invokes the *original*
function as an independent serverless instance, returns its response, and
attaches a notification about the failing input so the user can extend the
oracle set and re-run λ-trim.

The wrapper is generic over "invokers" — callables ``(event, context) ->
InvocationOutput`` — so it composes with both bare :class:`LoadedApp`
instances and functions deployed on the platform emulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.execution import InvocationOutput
from repro.vm import exec_cost

__all__ = ["FallbackOutcome", "FallbackWrapper", "TRIGGER_ERRORS", "SETUP_OVERHEAD_S"]

# Error types that indicate a removed attribute was accessed.
TRIGGER_ERRORS = frozenset({"AttributeError", "NameError", "ImportError"})

# "The setup overhead is around 50 ms, measured by timestamps in the
# function" (Section 8.7).
SETUP_OVERHEAD_S = 0.05

Invoker = Callable[[Any, Any], InvocationOutput]


@dataclass
class FallbackOutcome:
    """Result of an invocation through the fallback wrapper."""

    output: InvocationOutput
    used_fallback: bool
    notification: str | None = None

    @property
    def value(self) -> Any:
        return self.output.value


class FallbackWrapper:
    """Wraps a debloated invoker with the original-function safety net."""

    def __init__(
        self,
        primary: Invoker,
        original: Invoker,
        *,
        setup_overhead_s: float = SETUP_OVERHEAD_S,
    ):
        self._primary = primary
        self._original = original
        self._setup_overhead_s = setup_overhead_s
        self.fallbacks_triggered = 0

    def invoke(self, event: Any, context: Any = None) -> FallbackOutcome:
        """Invoke the debloated function, falling back on trigger errors."""
        output = self._primary(event, context)
        if output.error_type not in TRIGGER_ERRORS:
            return FallbackOutcome(output=output, used_fallback=False)

        # During normal operation the wrapper is free; triggering it charges
        # the setup/communication overhead before the original invocation.
        self.fallbacks_triggered += 1
        exec_cost("fallback:setup", time_s=self._setup_overhead_s)
        original_output = self._original(event, context)
        detail = getattr(output, "error", None) or output.error_type
        notification = (
            f"fallback triggered by {output.error_type}: {detail}; "
            "add this input to the oracle set and re-run lambda-trim"
        )
        return FallbackOutcome(
            output=original_output,
            used_fallback=True,
            notification=notification,
        )

    __call__ = invoke
