"""Deployment with fallbacks (Section 5.4, evaluated in Section 8.7).

If an input ever reaches code that λ-trim removed, Python raises an
``AttributeError`` (module attribute gone) or ``NameError`` (module-level
binding gone).  The fallback wrapper catches these, invokes the *original*
function as an independent serverless instance, returns its response, and
attaches a notification about the failing input so the user can extend the
oracle set and re-run λ-trim.

The wrapper is generic over "invokers" — callables ``(event, context) ->
InvocationOutput`` — so it composes with both bare :class:`LoadedApp`
instances and functions deployed on the platform emulator.

The paper stops at the one-shot wrapper; :class:`FallbackManager` is the
production hardening.  "Revisiting Code Debloating with Ground
Truth-based Evaluation" shows debloaters routinely ship breakage that
only surfaces under unusual inputs, so a deployment that keeps paying the
fallback detour on every such input is silently broken *and* slow.  The
manager counts triggers in a sliding virtual-time window
(:class:`SlidingWindowBreaker`); once they exceed the threshold it flips
the circuit and **un-trims** — redeploys the original bundle over the
primary name via ``update_function`` — so the fleet self-heals without a
human in the loop.  Every trigger and the flip itself are emitted as
observability events and counters.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.execution import InvocationOutput
from repro.errors import InvocationError
from repro.obs import get_recorder
from repro.vm import exec_cost

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.bundle import AppBundle
    from repro.platform.emulator import LambdaEmulator
    from repro.platform.logs import InvocationRecord

__all__ = [
    "FallbackOutcome",
    "FallbackWrapper",
    "SlidingWindowBreaker",
    "ManagedInvocation",
    "FallbackManager",
    "TRIGGER_ERRORS",
    "SETUP_OVERHEAD_S",
]

# Error types that indicate a removed attribute was accessed.
TRIGGER_ERRORS = frozenset({"AttributeError", "NameError", "ImportError"})

# "The setup overhead is around 50 ms, measured by timestamps in the
# function" (Section 8.7).
SETUP_OVERHEAD_S = 0.05

Invoker = Callable[[Any, Any], InvocationOutput]


@dataclass
class FallbackOutcome:
    """Result of an invocation through the fallback wrapper."""

    output: InvocationOutput
    used_fallback: bool
    notification: str | None = None

    @property
    def value(self) -> Any:
        return self.output.value


class FallbackWrapper:
    """Wraps a debloated invoker with the original-function safety net."""

    def __init__(
        self,
        primary: Invoker,
        original: Invoker,
        *,
        setup_overhead_s: float = SETUP_OVERHEAD_S,
    ):
        self._primary = primary
        self._original = original
        self._setup_overhead_s = setup_overhead_s
        self.fallbacks_triggered = 0

    def invoke(self, event: Any, context: Any = None) -> FallbackOutcome:
        """Invoke the debloated function, falling back on trigger errors."""
        recorder = get_recorder()
        with recorder.span("fallback.invoke") as span:
            output = self._primary(event, context)
            if output.error_type not in TRIGGER_ERRORS:
                if span is not None:
                    span.set_attr("used_fallback", False)
                return FallbackOutcome(output=output, used_fallback=False)

            # During normal operation the wrapper is free; triggering it
            # charges the setup/communication overhead before the original
            # invocation.
            self.fallbacks_triggered += 1
            detail = getattr(output, "error", None) or output.error_type
            recorder.counter_add("fallback.triggered")
            recorder.event(
                "fallback.triggered",
                {"error_type": output.error_type, "detail": str(detail)},
            )
            exec_cost("fallback:setup", time_s=self._setup_overhead_s)
            original_output = self._original(event, context)
            if span is not None:
                span.set_attr("used_fallback", True)
                span.set_attr("trigger_error", output.error_type)
            notification = (
                f"fallback triggered by {output.error_type}: {detail}; "
                "add this input to the oracle set and re-run lambda-trim"
            )
            return FallbackOutcome(
                output=original_output,
                used_fallback=True,
                notification=notification,
            )

    __call__ = invoke


class SlidingWindowBreaker:
    """Circuit breaker over a sliding window of virtual-time trigger events.

    State machine: ``closed`` (normal) → ``open`` (tripped).  The breaker
    counts fallback triggers whose timestamps fall inside the trailing
    ``window_s`` seconds; once ``threshold`` of them accumulate it opens
    and stays open — un-trimming is one-way until a human re-runs λ-trim
    with a better oracle set.
    """

    def __init__(self, *, threshold: int = 5, window_s: float = 300.0):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1: {threshold}")
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0: {window_s}")
        self.threshold = threshold
        self.window_s = window_s
        self.state = "closed"
        self.opened_at: float | None = None
        self.total_triggers = 0
        self._events: deque[float] = deque()

    def record(self, now: float) -> bool:
        """Register a trigger at virtual time ``now``.

        Returns ``True`` exactly once: on the trigger that flips the
        breaker from ``closed`` to ``open``.
        """
        self.total_triggers += 1
        cutoff = now - self.window_s
        while self._events and self._events[0] <= cutoff:
            self._events.popleft()
        self._events.append(now)
        if self.state == "closed" and len(self._events) >= self.threshold:
            self.state = "open"
            self.opened_at = now
            return True
        return False

    @property
    def triggers_in_window(self) -> int:
        return len(self._events)

    def to_dict(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "threshold": self.threshold,
            "window_s": self.window_s,
            "total_triggers": self.total_triggers,
            "triggers_in_window": self.triggers_in_window,
            "opened_at": self.opened_at,
        }


@dataclass
class ManagedInvocation:
    """Result of one request through a :class:`FallbackManager`."""

    record: "InvocationRecord"
    used_fallback: bool = False
    primary_record: "InvocationRecord | None" = None
    breaker_state: str = "closed"
    notification: str | None = None

    @property
    def value(self) -> Any:
        return self.record.value


class FallbackManager:
    """Self-healing deployment: trimmed primary, original safety net, breaker.

    Wraps a (primary, fallback) function pair on a
    :class:`~repro.platform.emulator.LambdaEmulator`.  Trigger errors on
    the primary are served by the fallback (as in the paper's wrapper);
    each trigger feeds the :class:`SlidingWindowBreaker`, and when the
    breaker opens the manager *un-trims*: ``update_function`` swaps the
    original bundle back in under the primary name, so subsequent cold
    starts load the full application and the trigger errors stop.
    """

    def __init__(
        self,
        emulator: "LambdaEmulator",
        primary: str,
        fallback: str,
        original_bundle: "AppBundle",
        *,
        breaker: SlidingWindowBreaker | None = None,
    ):
        self.emulator = emulator
        self.primary = primary
        self.fallback = fallback
        self.original_bundle = original_bundle
        self.breaker = breaker if breaker is not None else SlidingWindowBreaker()
        self.fallbacks_triggered = 0
        self.recovered = 0
        self.un_trimmed = False

    @property
    def state(self) -> str:
        return self.breaker.state

    def is_trigger(self, record: "InvocationRecord") -> bool:
        """Does this record show the trimmed bundle missing code it needs?"""
        return record.error_type in TRIGGER_ERRORS

    def record_trigger(self, now: float) -> bool:
        """Count one fallback trigger; un-trim if it trips the breaker.

        Returns ``True`` on the trigger that flipped the breaker open.
        """
        self.fallbacks_triggered += 1
        recorder = get_recorder()
        recorder.counter_add("fallback.triggered")
        tripped = self.breaker.record(now)
        if tripped:
            self._un_trim(now)
        return tripped

    def _un_trim(self, now: float) -> None:
        self.emulator.update_function(self.primary, bundle=self.original_bundle)
        self.un_trimmed = True
        recorder = get_recorder()
        recorder.counter_add("fallback.breaker_trips")
        recorder.event(
            "fallback.breaker_open",
            {
                "function": self.primary,
                "at": now,
                "triggers_in_window": self.breaker.triggers_in_window,
            },
        )

    def invoke(self, event: Any, context: Any = None) -> ManagedInvocation:
        """Invoke the primary; on a trigger, serve the fallback and count it.

        A trimmed bundle can also fail at *init* (module body imports
        something λ-trim removed) — the emulator raises
        :class:`~repro.errors.InvocationError` before any record exists.
        That is just as much a trigger, so it is caught and served by the
        fallback too.
        """
        primary_record: "InvocationRecord | None"
        try:
            primary_record = self.emulator.invoke(self.primary, event, context)
        except InvocationError:
            primary_record = None
        else:
            if not self.is_trigger(primary_record):
                return ManagedInvocation(
                    record=primary_record, breaker_state=self.state
                )

        self.record_trigger(self.emulator.clock.now())
        exec_cost("fallback:setup", time_s=SETUP_OVERHEAD_S)
        fallback_record = self.emulator.invoke(self.fallback, event, context)
        if fallback_record.ok:
            self.recovered += 1
            get_recorder().counter_add("fallback.recovered")
        trigger = (
            primary_record.error_type if primary_record is not None else "InitError"
        )
        return ManagedInvocation(
            record=fallback_record,
            used_fallback=True,
            primary_record=primary_record,
            breaker_state=self.state,
            notification=(
                f"fallback triggered by {trigger}; add this input to the "
                "oracle set and re-run lambda-trim"
            ),
        )

    __call__ = invoke

    def to_dict(self) -> dict[str, Any]:
        """Breaker + trigger state for telemetry/dashboard export."""
        return {
            "primary": self.primary,
            "fallback": self.fallback,
            "fallbacks_triggered": self.fallbacks_triggered,
            "recovered": self.recovered,
            "un_trimmed": self.un_trimmed,
            "breaker": self.breaker.to_dict(),
        }
