"""Oracle specifications and equivalence checking (Sections 4 and 5.3).

λ-trim's correctness contract is the *oracle specification*: a set of
(event, context) test cases for which the debloated program must produce
the same output as the original.  "In most cases, just ensuring the
matching of standard output is sufficient" — we compare the handler's
return value, its standard output, and (when the run fails) the error
type, so removing a needed attribute is always detected.

:class:`OracleRunner` captures the expected observables by running the
pristine bundle once per case, then answers DD queries by re-running a
candidate bundle and comparing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.bundle import AppBundle
from repro.core.execution import run_once
from repro.errors import OracleError
from repro.obs import get_recorder
from repro.vm import Meter, metered

__all__ = ["OracleCase", "OracleSpec", "OracleResult", "OracleRunner", "CaseOutcome"]


@dataclass(frozen=True)
class OracleCase:
    """One test case: an event payload and an invocation context."""

    name: str
    event: Any
    context: Any = None

    def to_dict(self) -> dict:
        return {"name": self.name, "event": self.event, "context": self.context}

    @classmethod
    def from_dict(cls, data: dict, *, index: int = 0) -> "OracleCase":
        if "event" not in data:
            raise OracleError(f"oracle case {index} missing 'event'")
        return cls(
            name=data.get("name", f"case-{index}"),
            event=data["event"],
            context=data.get("context"),
        )


@dataclass
class OracleSpec:
    """The full oracle: the cases the debloated program must preserve."""

    cases: list[OracleCase] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.cases:
            raise OracleError("oracle specification must contain at least one case")
        names = [case.name for case in self.cases]
        if len(set(names)) != len(names):
            raise OracleError(f"duplicate oracle case names: {names}")

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self):
        return iter(self.cases)

    def add_case(self, case: OracleCase) -> None:
        """Extend the oracle (the fuzz-then-rerun workflow of Section 5.4)."""
        if any(existing.name == case.name for existing in self.cases):
            raise OracleError(f"duplicate oracle case name: {case.name}")
        self.cases.append(case)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps([case.to_dict() for case in self.cases], indent=2)

    def save(self, path: Path | str) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def from_json(cls, text: str) -> "OracleSpec":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise OracleError(f"oracle specification is not valid JSON: {exc}") from exc
        if not isinstance(raw, list):
            raise OracleError("oracle specification must be a JSON list of cases")
        return cls(
            cases=[OracleCase.from_dict(item, index=i) for i, item in enumerate(raw)]
        )

    @classmethod
    def load(cls, path: Path | str) -> "OracleSpec":
        path = Path(path)
        if not path.exists():
            raise OracleError(f"oracle specification not found: {path}")
        return cls.from_json(path.read_text(encoding="utf-8"))

    @classmethod
    def from_bundle(cls, bundle: AppBundle) -> "OracleSpec":
        return cls.load(bundle.oracle_path)


@dataclass
class CaseOutcome:
    """Comparison result for a single oracle case."""

    case: str
    passed: bool
    expected: dict | None = None
    actual: dict | None = None

    def describe(self) -> str:
        if self.passed:
            return f"{self.case}: ok"
        return f"{self.case}: expected {self.expected!r}, got {self.actual!r}"


@dataclass
class OracleResult:
    """Aggregate verdict over every oracle case."""

    outcomes: list[CaseOutcome]

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    @property
    def failures(self) -> list[CaseOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    def __bool__(self) -> bool:
        return self.passed


RunFn = Callable[[AppBundle, Any, Any], dict]


def _default_run(bundle: AppBundle, event: Any, context: Any) -> dict:
    return run_once(bundle, event, context).observable()


class OracleRunner:
    """Answers "does this candidate bundle still satisfy the oracle?".

    Parameters
    ----------
    reference:
        The pristine bundle whose behaviour defines correctness.
    spec:
        Oracle cases; defaults to the bundle's ``oracle.json``.
    run:
        Strategy producing a run's observable dict — the in-process
        executor by default, a subprocess executor for OS-level isolation.
    fail_fast:
        Stop at the first failing case (the common DD configuration).
    """

    def __init__(
        self,
        reference: AppBundle,
        spec: OracleSpec | None = None,
        *,
        run: RunFn = _default_run,
        fail_fast: bool = True,
    ):
        self.spec = spec if spec is not None else OracleSpec.from_bundle(reference)
        self._run = run
        self._fail_fast = fail_fast
        self.checks_performed = 0
        # Accumulates the virtual time spent executing oracle probes — the
        # quantity behind Table 3's per-application debloating time.
        self.meter = Meter("oracle")
        self._expected: dict[str, dict] = {}
        with metered(self.meter):
            for case in self.spec:
                observable = self._run(reference, case.event, case.context)
                if observable.get("error_type") or observable.get("init_error_type"):
                    raise OracleError(
                        f"reference bundle fails oracle case {case.name!r}: {observable}"
                    )
                self._expected[case.name] = observable

    @property
    def expected(self) -> dict[str, dict]:
        return dict(self._expected)

    def check(self, candidate: AppBundle) -> OracleResult:
        """Run every case against *candidate* and compare observables."""
        self.checks_performed += 1
        recorder = get_recorder()
        outcomes: list[CaseOutcome] = []
        with recorder.span("oracle.check", cases=len(self.spec)) as span:
            with metered(self.meter):
                for case in self.spec:
                    virtual_before = self.meter.time_s
                    actual = self._run(candidate, case.event, case.context)
                    expected = self._expected[case.name]
                    passed = actual == expected
                    outcomes.append(
                        CaseOutcome(
                            case=case.name,
                            passed=passed,
                            expected=expected,
                            actual=actual,
                        )
                    )
                    if recorder.enabled:
                        recorder.event(
                            "oracle.case",
                            {
                                "case": case.name,
                                "passed": passed,
                                "virtual_s": self.meter.time_s - virtual_before,
                            },
                        )
                        recorder.counter_add(
                            "oracle.cases_passed" if passed else "oracle.cases_failed"
                        )
                    if not passed and self._fail_fast:
                        break
            result = OracleResult(outcomes=outcomes)
            if span is not None:
                span.set_attr("passed", result.passed)
            recorder.counter_add("oracle.checks")
        return result
