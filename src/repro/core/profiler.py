"""The serverless cost profiler: patched import machinery (Section 5.2, 7).

"All four values (t, m, T, and M) are measured by patching Python's import
machinery.  In particular, we modify Python's module loader by inserting
time and memory measurements before each module execution."

:class:`ImportTimer` is a meta-path finder that delegates spec resolution
to the regular finders and wraps each returned loader so that executing a
module body is bracketed by meter snapshots.  Nested imports are tracked on
a stack, giving every module both an *inclusive* marginal cost (its body
plus everything it alone pulled in — the paper's "modules and all their
submodules") and an *exclusive* cost (its body only).

Profiling happens under module isolation (Section 7): a fresh import scope
per profile run so the interpreter's module cache never hides a module's
cost.
"""

from __future__ import annotations

import importlib
import importlib.machinery
import sys
from dataclasses import dataclass
from typing import Any

from repro.bundle import AppBundle
from repro.core.cost_model import ModuleProfile, ProfileReport
from repro.core.execution import isolated_imports
from repro.errors import AnalysisError
from repro.obs.attribution import ColdStartProfile, attribute_cold_start
from repro.vm import Meter, metered

__all__ = [
    "ImportTimer",
    "profile_bundle",
    "profile_modules",
    "attribution_from_profile",
]


@dataclass
class _Frame:
    """Bookkeeping for one module currently executing its body."""

    module: str
    start_time_s: float
    start_mb: float
    child_time_s: float = 0.0
    child_mb: float = 0.0
    depth: int = 0


class _TimingLoader:
    """Delegating loader that meters ``exec_module``."""

    def __init__(self, inner, timer: "ImportTimer", fullname: str):
        self._inner = inner
        self._timer = timer
        self._fullname = fullname

    def create_module(self, spec):
        return self._inner.create_module(spec)

    def exec_module(self, module):
        self._timer._begin(self._fullname)
        try:
            self._inner.exec_module(module)
        finally:
            self._timer._end(self._fullname)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class ImportTimer:
    """Meta-path hook recording per-module marginal time and memory.

    Use as a context manager around the imports to measure::

        meter = Meter("profile")
        with metered(meter), ImportTimer(meter) as timer:
            importlib.import_module("handler")
        profiles = timer.profiles()
    """

    def __init__(self, meter: Meter):
        self._meter = meter
        self._stack: list[_Frame] = []
        self._records: dict[str, ModuleProfile] = {}
        self._order: list[str] = []
        self._installed = False

    # -- meta-path protocol --------------------------------------------------

    def find_spec(self, fullname, path=None, target=None):
        for finder in sys.meta_path:
            if finder is self:
                continue
            find = getattr(finder, "find_spec", None)
            if find is None:
                continue
            spec = find(fullname, path, target)
            if spec is not None:
                break
        else:
            return None
        if spec.loader is None or not hasattr(spec.loader, "exec_module"):
            return spec
        spec.loader = _TimingLoader(spec.loader, self, fullname)
        return spec

    # -- installation ----------------------------------------------------------

    def __enter__(self) -> "ImportTimer":
        if self._installed:
            raise AnalysisError("ImportTimer is already installed")
        sys.meta_path.insert(0, self)
        self._installed = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._installed:
            sys.meta_path.remove(self)
            self._installed = False

    # -- measurement -------------------------------------------------------------

    def _begin(self, fullname: str) -> None:
        self._stack.append(
            _Frame(
                module=fullname,
                start_time_s=self._meter.time_s,
                start_mb=self._meter.live_mb,
                depth=len(self._stack),
            )
        )

    def _end(self, fullname: str) -> None:
        frame = self._stack.pop()
        if frame.module != fullname:  # pragma: no cover - defensive
            raise AnalysisError(
                f"import stack corruption: expected {frame.module}, got {fullname}"
            )
        inclusive_time = self._meter.time_s - frame.start_time_s
        inclusive_mb = self._meter.live_mb - frame.start_mb
        profile = ModuleProfile(
            module=fullname,
            import_time_s=inclusive_time,
            memory_mb=max(inclusive_mb, 0.0),
            exclusive_time_s=max(inclusive_time - frame.child_time_s, 0.0),
            exclusive_memory_mb=max(inclusive_mb - frame.child_mb, 0.0),
            depth=frame.depth,
        )
        if fullname not in self._records:
            self._order.append(fullname)
        self._records[fullname] = profile
        if self._stack:
            parent = self._stack[-1]
            parent.child_time_s += inclusive_time
            parent.child_mb += inclusive_mb

    def profiles(self) -> list[ModuleProfile]:
        """Profiles in first-execution order."""
        return [self._records[name] for name in self._order]


def _is_profiled(module: str, include: tuple[str, ...] | None) -> bool:
    if include is None:
        return True
    return any(module == root or module.startswith(root + ".") for root in include)


def profile_bundle(
    bundle: AppBundle,
    *,
    restrict_to: list[str] | None = None,
) -> ProfileReport:
    """Profile an application's Function Initialization imports.

    Imports the bundle's handler module in an isolated scope with the
    timing hook installed, then reports the marginal cost of every module
    the initialization executed.  ``restrict_to`` limits the report to the
    given top-level packages (typically the static analyzer's external
    module list); the totals T and M always cover the whole initialization.
    """
    meter = Meter(f"profile:{bundle.name}")
    include = tuple(restrict_to) if restrict_to is not None else None

    paths = [str(bundle.site_packages), str(bundle.root)]
    with isolated_imports(paths):
        with metered(meter), ImportTimer(meter) as timer:
            try:
                importlib.import_module(bundle.manifest.handler_module)
            except Exception as exc:
                raise AnalysisError(
                    f"cannot profile {bundle.name}: initialization failed: {exc}"
                ) from exc

    profiles = [
        profile for profile in timer.profiles() if _is_profiled(profile.module, include)
    ]
    return ProfileReport(
        profiles=profiles,
        total_time_s=meter.time_s,
        total_memory_mb=meter.live_mb,
    )


def profile_modules(bundle: AppBundle, modules: list[str]) -> ProfileReport:
    """Profile specific modules by importing them directly, in order.

    A lower-level alternative to :func:`profile_bundle` for measuring a
    module list outside any application (used by tests and the examples).
    """
    meter = Meter(f"profile-modules:{bundle.name}")
    paths = [str(bundle.site_packages), str(bundle.root)]
    with isolated_imports(paths):
        with metered(meter), ImportTimer(meter) as timer:
            for name in modules:
                importlib.import_module(name)

    wanted = set(modules)
    profiles = [p for p in timer.profiles() if p.module in wanted]
    return ProfileReport(
        profiles=profiles,
        total_time_s=meter.time_s,
        total_memory_mb=meter.live_mb,
    )


def attribution_from_profile(
    report: ProfileReport,
    *,
    pricing: Any,
    memory_config_mb: int = 512,
    function: str = "profile",
) -> ColdStartProfile:
    """Price an offline :class:`ProfileReport` as a hypothetical cold start.

    Bridges the static profiler to the cost-attribution subsystem: the
    report's modules (first-execution order, *exclusive* costs so nested
    imports are not double-billed) become priced rows whose sequential
    USD sum reproduces ``pricing.invocation_cost(total_time_s, mb)``
    bit-exactly — the same invariant the emulator's live profiles hold.
    The result feeds the same flame-graph and diff exporters, so "what
    would trimming this module save" can be answered before any replay.
    """
    modules = [
        (p.module, p.exclusive_time_s, p.exclusive_memory_mb)
        for p in report.profiles
    ]
    billed = pricing.billed_duration_s(report.total_time_s)
    cost = pricing.invocation_cost(report.total_time_s, memory_config_mb)
    return attribute_cold_start(
        function=function,
        request_id="profile",
        timestamp=0.0,
        pricing=pricing,
        memory_config_mb=int(pricing.clamp_memory_mb(memory_config_mb)),
        modules=modules,
        billed_init_s=billed,
        restore_s=0.0,
        exec_s=0.0,
        billed_duration_s=billed,
        cost_usd=cost,
        include_exec=False,
    )
