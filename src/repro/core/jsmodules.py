"""ES-module decomposition: the Section 6.1 generalizability claim.

"JS offers a similar import model as Python; one can import specific
exports from another module, similar to the from import statement of
Python.  Thus, DD can be adjusted in a straightforward way to JS modules."

This module demonstrates that adjustment: a small parser decomposes an
ES module's top level into attribute components — named imports
(individually removable, like Python's ``from … import``), default and
namespace imports, function/class/const declarations — and a rebuilder
materialises any kept subset.  The generic DD algorithm then minimizes JS
modules exactly as it minimizes Python ones; only the decompose/rebuild
pair is language-specific.

The parser covers the common top-level forms (statement-per-line or
brace-balanced blocks); exotic syntax (re-exports with strings, top-level
await expressions, decorators) is conservatively pinned, mirroring the
Python decomposer's treatment of unrecognised statements.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import DebloatError

__all__ = [
    "JsComponent",
    "JsModuleDecomposition",
    "decompose_js_module",
    "rebuild_js_source",
]

_NAMED_IMPORT = re.compile(
    r"^import\s*\{(?P<names>[^}]*)\}\s*from\s*(?P<module>['\"][^'\"]+['\"])\s*;?\s*$"
)
_DEFAULT_IMPORT = re.compile(
    r"^import\s+(?P<name>[A-Za-z_$][\w$]*)\s+from\s*(?P<module>['\"][^'\"]+['\"])\s*;?\s*$"
)
_NAMESPACE_IMPORT = re.compile(
    r"^import\s*\*\s*as\s+(?P<name>[A-Za-z_$][\w$]*)\s+from\s*"
    r"(?P<module>['\"][^'\"]+['\"])\s*;?\s*$"
)
_BARE_IMPORT = re.compile(r"^import\s*(?P<module>['\"][^'\"]+['\"])\s*;?\s*$")
_DECLARATION = re.compile(
    r"^(?P<export>export\s+)?(?P<kind>function|class|const|let|var)\s+"
    r"(?P<name>[A-Za-z_$][\w$]*)"
)


@dataclass(frozen=True)
class JsComponent:
    """One removable binding of an ES module's top level."""

    stmt_index: int
    alias_index: int
    name: str
    kind: str  # named-import | default-import | namespace-import | declaration
    source_module: str = ""

    @property
    def key(self) -> str:
        return f"{self.name}@{self.stmt_index}.{self.alias_index}"


@dataclass
class JsModuleDecomposition:
    """An ES module split into statements and removable components."""

    source: str
    statements: list[str]
    components: list[JsComponent] = field(default_factory=list)

    @property
    def attribute_names(self) -> list[str]:
        return [c.name for c in self.components]

    def removable(self, protected: set[str]) -> list[JsComponent]:
        return [c for c in self.components if c.name not in protected]


def _split_statements(source: str) -> list[str]:
    """Split a module into top-level statements by brace/paren balance.

    Line comments survive inside the statement they follow; a statement
    ends when braces/brackets/parens are balanced and the line does not
    continue an unfinished construct.
    """
    statements: list[str] = []
    buffer: list[str] = []
    depth = 0
    for line in source.splitlines():
        stripped = _strip_line_comment(line)
        buffer.append(line)
        depth += stripped.count("{") + stripped.count("(") + stripped.count("[")
        depth -= stripped.count("}") + stripped.count(")") + stripped.count("]")
        if depth < 0:
            raise DebloatError("unbalanced braces in ES module")
        if depth == 0 and (stripped.strip() or len(buffer) == 1):
            statements.append("\n".join(buffer))
            buffer = []
    if depth != 0:
        raise DebloatError("unterminated block at end of ES module")
    if buffer:
        statements.append("\n".join(buffer))
    return statements


def _strip_line_comment(line: str) -> str:
    # good enough for generated/test fixtures: ignores // inside strings
    index = line.find("//")
    return line if index < 0 else line[:index]


def _import_alias_name(alias: str) -> str:
    """The local binding of one name in ``import { a as b }``."""
    parts = alias.strip().split()
    if len(parts) == 3 and parts[1] == "as":
        return parts[2]
    return parts[0] if parts else ""


def decompose_js_module(source: str) -> JsModuleDecomposition:
    """Decompose an ES module's top level into attribute components."""
    statements = _split_statements(source)
    components: list[JsComponent] = []

    for index, statement in enumerate(statements):
        head = statement.strip()
        if not head or head.startswith("//") or head.startswith("/*"):
            continue  # pinned

        named = _NAMED_IMPORT.match(head)
        if named:
            aliases = [a for a in named.group("names").split(",") if a.strip()]
            for alias_index, alias in enumerate(aliases):
                components.append(
                    JsComponent(
                        stmt_index=index,
                        alias_index=alias_index,
                        name=_import_alias_name(alias),
                        kind="named-import",
                        source_module=named.group("module").strip("'\""),
                    )
                )
            continue

        for pattern, kind in (
            (_DEFAULT_IMPORT, "default-import"),
            (_NAMESPACE_IMPORT, "namespace-import"),
        ):
            match = pattern.match(head)
            if match:
                components.append(
                    JsComponent(
                        stmt_index=index,
                        alias_index=0,
                        name=match.group("name"),
                        kind=kind,
                        source_module=match.group("module").strip("'\""),
                    )
                )
                break
        else:
            if _BARE_IMPORT.match(head):
                continue  # side-effect import: pinned (like Python's pinned)
            declaration = _DECLARATION.match(head)
            if declaration:
                components.append(
                    JsComponent(
                        stmt_index=index,
                        alias_index=0,
                        name=declaration.group("name"),
                        kind="declaration",
                    )
                )
            # everything else (export lists, expressions) stays pinned

    return JsModuleDecomposition(
        source=source, statements=statements, components=components
    )


def rebuild_js_source(
    decomposition: JsModuleDecomposition, keep: list[JsComponent]
) -> str:
    """Source of the module with only *keep* (plus pinned statements)."""
    kept = set(keep)
    kept_by_statement: dict[int, set[int]] = {}
    removable_by_statement: dict[int, set[int]] = {}
    for component in decomposition.components:
        removable_by_statement.setdefault(component.stmt_index, set()).add(
            component.alias_index
        )
        if component in kept:
            kept_by_statement.setdefault(component.stmt_index, set()).add(
                component.alias_index
            )

    chunks: list[str] = []
    for index, statement in enumerate(decomposition.statements):
        removable = removable_by_statement.get(index)
        if removable is None:
            chunks.append(statement)
            continue
        kept_aliases = kept_by_statement.get(index, set())
        if not kept_aliases:
            continue  # whole statement removed
        if kept_aliases == removable:
            chunks.append(statement)
            continue
        # partial named-import: rebuild the brace list
        named = _NAMED_IMPORT.match(statement.strip())
        if named is None:  # pragma: no cover - only named imports are partial
            chunks.append(statement)
            continue
        aliases = [a.strip() for a in named.group("names").split(",") if a.strip()]
        surviving = [a for i, a in enumerate(aliases) if i in kept_aliases]
        chunks.append(
            f"import {{ {', '.join(surviving)} }} from {named.group('module')};"
        )
    return "\n".join(chunks) + ("\n" if chunks else "")
