"""The lambda-trim core: static analysis, profiling, and DD-based debloating.

The public pipeline entry point is :class:`repro.core.pipeline.LambdaTrim`;
the submodules implement the three architecture boxes of Figure 3 plus the
shared machinery (DD algorithm, attribute granularity, AST rewriting,
oracles, fallback wrapper).
"""

from repro.core.dd import DDOutcome, DDTraceStep, DeltaDebugger, ddmin_keep
from repro.core.granularity import AttributeComponent, ModuleDecomposition, decompose_module
from repro.core.static_analyzer import ImportedModule, StaticAnalysis, analyze_source
from repro.core.oracle import OracleCase, OracleResult, OracleSpec
from repro.core.cost_model import (
    ModuleProfile,
    ScoringMethod,
    marginal_monetary_cost,
    rank_modules,
)
from repro.core.journal import (
    JournalState,
    ProbeJournal,
    RecoveryReport,
    atomic_write_text,
    candidate_hash,
    default_journal_path,
    recover_workspace,
)
from repro.core.pipeline import DebloatReport, LambdaTrim, TrimConfig
from repro.core.fallback import FallbackOutcome, FallbackWrapper
from repro.core.fuzzer import FuzzReport, OracleFuzzer
from repro.core.incremental import IncrementalTrim, TrimLog
from repro.core.guided import NecessityModel, guided_minimize

__all__ = [
    "DDOutcome",
    "DDTraceStep",
    "DeltaDebugger",
    "ddmin_keep",
    "AttributeComponent",
    "ModuleDecomposition",
    "decompose_module",
    "ImportedModule",
    "StaticAnalysis",
    "analyze_source",
    "OracleCase",
    "OracleResult",
    "OracleSpec",
    "ModuleProfile",
    "ScoringMethod",
    "marginal_monetary_cost",
    "rank_modules",
    "JournalState",
    "ProbeJournal",
    "RecoveryReport",
    "atomic_write_text",
    "candidate_hash",
    "default_journal_path",
    "recover_workspace",
    "DebloatReport",
    "LambdaTrim",
    "TrimConfig",
    "FallbackOutcome",
    "FallbackWrapper",
    "FuzzReport",
    "OracleFuzzer",
    "IncrementalTrim",
    "TrimLog",
    "NecessityModel",
    "guided_minimize",
]
