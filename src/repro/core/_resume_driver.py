"""Subprocess driver for the kill-and-resume crash harness.

Usage (spawned by ``tests/core/test_crash_resume.py`` and
``benchmarks/bench_resume_smoke.py``)::

    python -m repro.core._resume_driver build-toy <dir>
    python -m repro.core._resume_driver run --bundle B --output O
        [--journal J] [--crash-after N] [--resume] [--k K] [--seed S]
        [--budget N] [--no-call-graph]

``--crash-after N`` installs a post-append hook on the probe journal that
SIGKILLs this process immediately after the N-th journal append — i.e. at
an exact probe/commit boundary.  Enumerating N from 1 to the record count
of an uninterrupted run exercises *every* crash edge deterministically.

On normal completion one JSON summary line (prefixed by a sentinel, same
protocol as :mod:`repro.core._oracle_child`) lands on stdout with
everything the harness asserts on: per-module removed sets and probe
accounting, the verification verdict, and the journal path.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys

SENTINEL = "@@LAMBDA_TRIM_RESUME@@"


def _summary(report) -> dict:
    modules = {}
    for result in report.module_results:
        modules[result.module] = {
            "removed": sorted(result.removed),
            "kept": sorted(result.kept),
            "oracle_calls": result.oracle_calls,
            "cache_hits": result.cache_hits,
            "journal_hits": result.journal_hits,
            "flaky_probes": result.flaky_probes,
            "resumed": result.resumed,
            "skipped_reason": result.skipped_reason,
        }
    return {
        "app": report.app,
        "output_root": str(report.output_root),
        "verify_passed": report.verify_passed,
        "resumed": report.resumed,
        "modules": modules,
        "oracle_calls": report.oracle_calls,
        "journal_hits": report.journal_hits,
        "flaky_probes": report.flaky_probes,
        "journal_path": str(report.journal_path),
    }


def _cmd_build_toy(args: argparse.Namespace) -> int:
    from repro.workloads.toy import build_toy_torch_app

    bundle = build_toy_torch_app(args.directory)
    print(SENTINEL + json.dumps({"root": str(bundle.root), "name": bundle.name}))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.bundle import AppBundle
    from repro.core import journal as journal_mod
    from repro.core.pipeline import LambdaTrim, TrimConfig

    if args.crash_after is not None:
        crash_at = args.crash_after

        def die_at_boundary(count: int) -> None:
            if count >= crash_at:
                # SIGKILL: no cleanup, no atexit, no flush — the harshest
                # crash the journal's durability contract must survive.
                os.kill(os.getpid(), signal.SIGKILL)

        journal_mod.set_post_append_hook(die_at_boundary)

    config = TrimConfig(
        k=args.k,
        seed=args.seed,
        use_call_graph=not args.no_call_graph,
        max_oracle_calls_per_module=args.budget,
        verify_journal_probes=args.verify_probes,
    )
    report = LambdaTrim(config).run(
        AppBundle(args.bundle),
        args.output,
        resume=args.resume,
        journal_path=args.journal,
    )
    print(SENTINEL + json.dumps(_summary(report), sort_keys=True))
    return 0 if report.verify_passed else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-resume-driver")
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build-toy")
    build.add_argument("directory")

    run = commands.add_parser("run")
    run.add_argument("--bundle", required=True)
    run.add_argument("--output", required=True)
    run.add_argument("--journal", default=None)
    run.add_argument("--crash-after", type=int, default=None)
    run.add_argument("--resume", action="store_true")
    run.add_argument("--k", type=int, default=20)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--budget", type=int, default=None)
    run.add_argument("--no-call-graph", action="store_true")
    run.add_argument("--verify-probes", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "build-toy":
        return _cmd_build_toy(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
