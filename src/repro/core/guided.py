"""Learning-guided delta debugging (the paper's [25] acceleration path).

"Prior work has also demonstrated the promise of learning techniques to
choose the attribute set that is the most probable to pass the oracle
test" (Section 8.3, citing Heo et al., CCS'18).

:class:`GuidedDeltaDebugger` augments Algorithm 1 with an online necessity
model.  Every oracle probe is a labelled observation: a *passing* probe
proves every excluded component unnecessary-in-context, while a *failing*
probe weakly implicates the excluded components.  The model keeps simple
Beta-style counts per component and, before partitioning, reorders the
candidate so likely-needed components cluster at the front.

Why that helps: DD partitions contiguously, so when the needed components
cluster in one partition, a subset probe hits early and the candidate
halves immediately; scattered needed components force granularity
doubling.  The reordering converts the scattered case into the clustered
one as evidence accumulates.  Results are unchanged (1-minimality is
oracle-driven); only the number of probes drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, Sequence, TypeVar

from repro.core.dd import DDOutcome, DeltaDebugger

__all__ = ["NecessityModel", "GuidedDeltaDebugger", "guided_minimize"]

T = TypeVar("T", bound=Hashable)


@dataclass
class NecessityModel(Generic[T]):
    """Online per-component estimate of P(component is needed).

    ``exonerated`` counts probes that *passed without* the component
    (strong evidence it is unnecessary); ``implicated`` counts probes
    that *failed without* it (weak evidence it may be needed).
    """

    exonerated: dict[T, int] = field(default_factory=dict)
    implicated: dict[T, int] = field(default_factory=dict)

    def observe(self, excluded: Sequence[T], passed: bool) -> None:
        counter = self.exonerated if passed else self.implicated
        for component in excluded:
            counter[component] = counter.get(component, 0) + 1

    def necessity(self, component: T) -> float:
        """Posterior-ish score in (0, 1); 0.5 when nothing is known."""
        exonerated = self.exonerated.get(component, 0)
        implicated = self.implicated.get(component, 0)
        # passing-without is decisive, failing-without only suggestive
        return (1 + implicated) / (2 + implicated + 4 * exonerated)

    def order(self, components: Sequence[T]) -> list[T]:
        """Components sorted most-likely-needed first (stable)."""
        indexed = list(enumerate(components))
        indexed.sort(key=lambda pair: (-self.necessity(pair[1]), pair[0]))
        return [component for _, component in indexed]


class GuidedDeltaDebugger(DeltaDebugger[T]):
    """Algorithm 1 with necessity-model-guided candidate ordering."""

    def __init__(
        self,
        oracle: Callable[[Sequence[T]], bool],
        *,
        record_trace: bool = False,
        max_oracle_calls: int | None = None,
        check_initial: bool = True,
    ) -> None:
        self.model: NecessityModel[T] = NecessityModel()
        self._all_components: set[T] = set()

        def observing_oracle(candidate: Sequence[T]) -> bool:
            passed = oracle(candidate)
            excluded = self._all_components - set(candidate)
            self.model.observe(list(excluded), passed)
            return passed

        super().__init__(
            observing_oracle,
            record_trace=record_trace,
            max_oracle_calls=max_oracle_calls,
            check_initial=check_initial,
        )

    def minimize(self, components: Sequence[T]) -> DDOutcome[T]:
        self._all_components = set(components)
        return super().minimize(components)


def guided_minimize(
    components: Sequence[T],
    oracle: Callable[[Sequence[T]], bool],
    *,
    max_oracle_calls: int | None = None,
    reorder_rounds: int = 3,
    model: NecessityModel[T] | None = None,
) -> DDOutcome[T]:
    """Minimize with periodic necessity-guided reordering.

    Runs guided DD in rounds: each round executes Algorithm 1 with a
    budget; between rounds the surviving candidate is reordered by the
    learned necessity scores, clustering likely-needed components so the
    next round's contiguous partitions align with them.  Totals are
    accumulated across rounds (the configuration cache persists within a
    round only; cross-round repeats are new probes, counted honestly).

    The big win is **transfer** (the Chisel-style setting): pass a *warm*
    ``model`` trained on a previous, similar program — e.g. the last
    deployment of the same application, or the same library in a sibling
    function.  A warm model clusters the likely-needed components up
    front, so the very first subset probes hit and DD converges in a
    fraction of the calls.  Cold-started models rarely help: failing
    probes implicate every excluded component equally, so there is no
    signal until something passes.
    """
    if model is None:
        model = NecessityModel()
    all_components = set(components)
    # a warm model reorders the initial candidate before any probe runs
    candidate_order = model.order(components)

    def observing_oracle(candidate: Sequence[T]) -> bool:
        passed = oracle(candidate)
        model.observe(list(all_components - set(candidate)), passed)
        return passed

    candidate = list(candidate_order)
    total_calls = 0
    total_hits = 0
    total_iterations = 0
    per_round_budget = (
        None if max_oracle_calls is None else max(max_oracle_calls // reorder_rounds, 8)
    )

    outcome: DDOutcome[T] | None = None
    for round_index in range(reorder_rounds):
        debugger = DeltaDebugger(
            observing_oracle,
            max_oracle_calls=per_round_budget,
            check_initial=(round_index == 0),
        )
        outcome = debugger.minimize(candidate)
        total_calls += outcome.oracle_calls
        total_hits += outcome.cache_hits
        total_iterations += outcome.iterations
        if len(outcome.minimal) <= 1:
            break
        reordered = model.order(outcome.minimal)
        if reordered == list(outcome.minimal):
            break  # converged: no new ordering information
        candidate = reordered

    assert outcome is not None
    return DDOutcome(
        minimal=outcome.minimal,
        oracle_calls=total_calls,
        cache_hits=total_hits,
        iterations=total_iterations,
    )
