"""Attribute-granularity decomposition of a Python module (Section 6.1).

A module's namespace is built by its top-level statements: ``import`` adds a
module object, ``def``/``class`` add function/class objects, and simple
assignments add values.  λ-trim runs DD at *attribute* granularity, which is

* coarser than statements for ``def``/``class`` (one component per binding),
* identical for ``import module`` statements, and
* **finer** for ``from module import a, b`` — each imported name is its own
  component, so unused names can be dropped individually (the paper's key
  memory win over statement granularity).

Magic/dunder attributes (``__all__``, ``__version__`` …), docstrings, and
any top-level statement that does not bind a single plain name (``try``
blocks, calls, augmented assignments, tuple targets) are *pinned*: they are
always kept and never offered to DD ("all other code is untouched").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.errors import DebloatError

__all__ = [
    "AttributeComponent",
    "ModuleDecomposition",
    "decompose_module",
    "is_magic_name",
    "KIND_IMPORT",
    "KIND_FROM_IMPORT",
    "KIND_DEF",
    "KIND_CLASS",
    "KIND_ASSIGN",
    "GRANULARITY_ATTRIBUTE",
    "GRANULARITY_STATEMENT",
    "WHOLE_STATEMENT",
]

GRANULARITY_ATTRIBUTE = "attribute"
GRANULARITY_STATEMENT = "statement"

# Sentinel alias index marking a component that covers an entire import
# statement (statement-granularity mode: "removes all or none").
WHOLE_STATEMENT = -1

KIND_IMPORT = "import"
KIND_FROM_IMPORT = "from-import"
KIND_DEF = "def"
KIND_CLASS = "class"
KIND_ASSIGN = "assign"


def is_magic_name(name: str) -> bool:
    """True for dunder attributes, which are excluded from DD (Section 6.3)."""
    return name.startswith("__") and name.endswith("__")


@dataclass(frozen=True, order=True)
class AttributeComponent:
    """One removable attribute binding in a module's top-level namespace.

    ``stmt_index`` is the index of the owning top-level statement;
    ``alias_index`` distinguishes the names of a single ``from … import``
    statement.  The pair makes components unique even when a name is bound
    twice in the file.  ``source`` is the absolute module a from-import
    alias re-exports from (empty otherwise) — the call graph uses it to
    protect re-exports whose origin attribute is definitely accessed.
    """

    stmt_index: int
    alias_index: int
    name: str
    kind: str
    source: str = ""

    @property
    def key(self) -> str:
        """Stable human-readable identifier, e.g. ``Linear@4``."""
        return f"{self.name}@{self.stmt_index}.{self.alias_index}"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.name


@dataclass
class ModuleDecomposition:
    """A parsed module split into removable components and pinned statements."""

    source: str
    tree: ast.Module
    components: list[AttributeComponent]
    pinned_statements: list[int] = field(default_factory=list)

    @property
    def attribute_names(self) -> list[str]:
        return [c.name for c in self.components]

    @property
    def attribute_count(self) -> int:
        return len(self.components)

    def components_named(self, *names: str) -> list[AttributeComponent]:
        """All components whose attribute name is in *names*."""
        wanted = set(names)
        return [c for c in self.components if c.name in wanted]

    def removable(self, protected: set[str]) -> list[AttributeComponent]:
        """Components whose names are NOT in *protected* (PyCG output etc.)."""
        return [c for c in self.components if c.name not in protected]


def _import_bound_name(alias: ast.alias) -> str:
    """The name an ``import`` alias binds in the namespace.

    ``import a.b.c`` binds ``a`` (the top package); ``import a.b as c``
    binds ``c``.
    """
    if alias.asname:
        return alias.asname
    return alias.name.split(".")[0]


def decompose_module(
    source: str,
    *,
    filename: str = "<module>",
    granularity: str = GRANULARITY_ATTRIBUTE,
) -> ModuleDecomposition:
    """Parse *source* and split its top level into components.

    ``granularity`` selects the paper's Section 6.1 design axis:
    ``"attribute"`` (the λ-trim default — individual ``from … import``
    names are separately removable) or ``"statement"`` (the coarser
    alternative where an import statement "removes all or none" of its
    names).
    """
    if granularity not in (GRANULARITY_ATTRIBUTE, GRANULARITY_STATEMENT):
        raise DebloatError(f"unknown granularity: {granularity!r}")
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise DebloatError(f"cannot parse {filename}: {exc}") from exc

    components: list[AttributeComponent] = []
    pinned: list[int] = []

    for index, stmt in enumerate(tree.body):
        stmt_components = _decompose_statement(index, stmt)
        if stmt_components and granularity == GRANULARITY_STATEMENT:
            stmt_components = _coarsen_to_statement(stmt_components)
        if stmt_components:
            components.extend(stmt_components)
        else:
            pinned.append(index)

    return ModuleDecomposition(
        source=source,
        tree=tree,
        components=components,
        pinned_statements=pinned,
    )


def _coarsen_to_statement(
    components: list[AttributeComponent],
) -> list[AttributeComponent]:
    """Collapse multi-alias import components into one whole-statement one."""
    if len(components) == 1 and components[0].alias_index == 0:
        return components
    first = components[0]
    return [
        AttributeComponent(
            stmt_index=first.stmt_index,
            alias_index=WHOLE_STATEMENT,
            name="+".join(c.name for c in components),
            kind=first.kind,
            source=first.source,
        )
    ]


def _decompose_statement(index: int, stmt: ast.stmt) -> list[AttributeComponent]:
    """Components bound by one top-level statement ([] means pinned)."""
    if isinstance(stmt, ast.Import):
        names = [_import_bound_name(alias) for alias in stmt.names]
        # ``import a.b`` and ``import a`` both bind ``a``; plain (non-aliased)
        # dotted imports of distinct subpackages under one parent are still
        # separately removable because dropping one alias drops that
        # submodule's import side effect.
        return [
            AttributeComponent(index, i, name, KIND_IMPORT)
            for i, name in enumerate(names)
            if not is_magic_name(name)
        ]

    if isinstance(stmt, ast.ImportFrom):
        if stmt.module is None and stmt.level == 0:
            return []
        if any(alias.name == "*" for alias in stmt.names):
            return []  # star imports bind an unknowable set: pinned
        source = stmt.module if (stmt.module and stmt.level == 0) else ""
        return [
            AttributeComponent(
                index,
                i,
                alias.asname or alias.name,
                KIND_FROM_IMPORT,
                source=source,
            )
            for i, alias in enumerate(stmt.names)
            if not is_magic_name(alias.asname or alias.name)
        ]

    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        if is_magic_name(stmt.name):
            return []
        return [AttributeComponent(index, 0, stmt.name, KIND_DEF)]

    if isinstance(stmt, ast.ClassDef):
        if is_magic_name(stmt.name):
            return []
        return [AttributeComponent(index, 0, stmt.name, KIND_CLASS)]

    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        target = _single_name_target(stmt)
        if target is None or is_magic_name(target):
            return []
        return [AttributeComponent(index, 0, target, KIND_ASSIGN)]

    # Everything else — expressions (docstrings, calls), try/if blocks,
    # augmented assignment, deletes — is pinned.
    return []


def _single_name_target(stmt: ast.Assign | ast.AnnAssign) -> str | None:
    """The bound name if the assignment binds exactly one plain name."""
    if isinstance(stmt, ast.AnnAssign):
        if stmt.value is None:
            return None  # bare annotation binds nothing at runtime
        target = stmt.target
        return target.id if isinstance(target, ast.Name) else None
    if len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if isinstance(target, ast.Name):
        return target.id
    return None
