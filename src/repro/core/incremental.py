"""Continuous debloating (the Section 9 future-work pipeline).

"We plan to implement a continuous debloating pipeline for both function
updates and inputs that are collected through our fallback mechanism.
This pipeline will make use of logs collected during the initial
debloating to drive the subsequent debloating more efficiently."

:class:`TrimLog` is that log: the per-module kept attribute sets of a
previous λ-trim run, serialisable next to the bundle.
:class:`IncrementalTrim` replays a new run seeded by the log:

* if the previously-kept set still satisfies the (possibly extended)
  oracle, it is adopted after a **single** oracle call per module;
* otherwise DD re-runs with the previously-kept components ordered first,
  which clusters the likely-needed attributes and speeds convergence
  (DD partitions contiguously).

Typical uses: a fallback notification added a case to the oracle
(Section 5.4), or the handler was updated and redeployed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.bundle import AppBundle
from repro.core.pipeline import DebloatReport, LambdaTrim, TrimConfig
from repro.errors import DebloatError

__all__ = ["TrimLog", "IncrementalTrim"]

LOG_VERSION = 1


@dataclass
class TrimLog:
    """Persisted record of a debloating run: module -> kept attribute names."""

    app: str
    kept: dict[str, list[str]] = field(default_factory=dict)
    version: int = LOG_VERSION

    @classmethod
    def from_report(cls, report: DebloatReport) -> "TrimLog":
        kept = {
            result.module: list(result.kept)
            for result in report.module_results
            if not result.skipped
        }
        return cls(app=report.app, kept=kept)

    def seed_for(self, module: str) -> list[str] | None:
        return self.kept.get(module)

    # -- serialisation ----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"version": self.version, "app": self.app, "kept": self.kept},
            indent=2,
        )

    def save(self, path: Path | str) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Path | str) -> "TrimLog":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != LOG_VERSION:
            raise DebloatError(
                f"unsupported trim-log version: {data.get('version')!r}"
            )
        return cls(app=data["app"], kept=dict(data["kept"]))


class IncrementalTrim(LambdaTrim):
    """λ-trim seeded by a previous run's :class:`TrimLog`."""

    def __init__(self, config: TrimConfig | None = None, *, log: TrimLog | None = None):
        super().__init__(config)
        self.log = log

    def run(
        self, bundle: AppBundle, output_dir: Path | str, **kwargs
    ) -> DebloatReport:
        seeds = dict(self.log.kept) if self.log is not None else None
        report = super().run(bundle, output_dir, seeds=seeds, **kwargs)
        return report

    def updated_log(self, report: DebloatReport) -> TrimLog:
        """The log to persist for the *next* incremental run."""
        return TrimLog.from_report(report)


def seeded_statistics(report: DebloatReport) -> dict[str, int]:
    """How many modules were adopted straight from the seed vs re-searched."""
    adopted = sum(1 for r in report.module_results if getattr(r, "seeded", False))
    searched = sum(
        1
        for r in report.module_results
        if not r.skipped and not getattr(r, "seeded", False)
    )
    return {"adopted": adopted, "searched": searched}
