"""The DD-based module debloater (Sections 5.3 and 6.3).

For each module the profiler selects, the debloater:

1. loads the module's file and decomposes it into attribute components
   (Section 6.1);
2. backs the file up "so that it can be retrieved in every iteration of
   DD";
3. builds the set of potentially redundant attributes — everything except
   the attributes in the call-graph output and the magic attributes;
4. runs DD: each query rewrites the file with the candidate attribute set
   (a single AST traversal) and re-runs the oracle.

The winning configuration is left on disk; a
:class:`ModuleDebloatResult` records the attribute counts before/after
(Table 3), the oracle statistics, and the virtual time the DD search spent
executing oracle probes (Table 3's debloating time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.bundle import AppBundle
from repro.core.ast_transform import rebuild_source
from repro.core.dd import DDTraceStep, DeltaDebugger
from repro.core.granularity import (
    GRANULARITY_ATTRIBUTE,
    AttributeComponent,
    decompose_module,
)
from repro.core.oracle import OracleRunner
from repro.errors import DebloatError

__all__ = ["ModuleDebloatResult", "ModuleDebloater", "restore_module"]

BACKUP_SUFFIX = ".lambdatrim.orig"


@dataclass
class ModuleDebloatResult:
    """Outcome of debloating a single module."""

    module: str
    file: Path
    attributes_before: int
    attributes_after: int
    protected: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    kept: list[str] = field(default_factory=list)
    oracle_calls: int = 0
    cache_hits: int = 0
    dd_iterations: int = 0
    debloat_time_s: float = 0.0  # virtual seconds of oracle execution
    wall_time_s: float = 0.0
    skipped_reason: str | None = None
    seeded: bool = False  # adopted a previous run's kept set (Section 9)
    trace: list[DDTraceStep] = field(default_factory=list)

    @property
    def removed_count(self) -> int:
        return len(self.removed)

    @property
    def skipped(self) -> bool:
        return self.skipped_reason is not None

    def summary(self) -> str:
        if self.skipped:
            return f"{self.module}: skipped ({self.skipped_reason})"
        return (
            f"{self.module}: {self.attributes_after}/{self.attributes_before} "
            f"attributes kept, {self.oracle_calls} oracle calls"
        )


def backup_path(file: Path) -> Path:
    return file.with_name(file.name + BACKUP_SUFFIX)


def restore_module(file: Path) -> bool:
    """Restore a module from its λ-trim backup; True if a backup existed."""
    backup = backup_path(file)
    if not backup.exists():
        return False
    file.write_text(backup.read_text(encoding="utf-8"), encoding="utf-8")
    backup.unlink()
    return True


class ModuleDebloater:
    """Runs attribute-level DD over modules of a working bundle.

    Parameters
    ----------
    bundle:
        The *working* bundle whose files are rewritten in place.  Callers
        clone the pristine bundle first (see
        :class:`repro.core.pipeline.LambdaTrim`).
    runner:
        Oracle runner whose expected outputs came from the pristine bundle.
    record_trace:
        Keep the full DD trace per module (Figure 6 walkthroughs).
    max_oracle_calls_per_module:
        Budget for each module's DD search; the best candidate found within
        the budget is kept.
    """

    def __init__(
        self,
        bundle: AppBundle,
        runner: OracleRunner,
        *,
        record_trace: bool = False,
        max_oracle_calls_per_module: int | None = None,
        granularity: str = GRANULARITY_ATTRIBUTE,
    ):
        self.bundle = bundle
        self.runner = runner
        self._record_trace = record_trace
        self._max_calls = max_oracle_calls_per_module
        self._granularity = granularity

    def debloat_module(
        self,
        dotted: str,
        protected: set[str] | frozenset[str] = frozenset(),
        *,
        extra_protected: Callable[[AttributeComponent], bool] | None = None,
        seed_keep: list[str] | None = None,
    ) -> ModuleDebloatResult:
        """Debloat one module, leaving the minimized file on disk.

        ``extra_protected`` lets the caller pin additional components by
        inspection — the pipeline uses it to protect from-import aliases
        whose origin attribute the call graph marks as accessed (e.g.
        keep ``from torch.nn import Linear`` because the application uses
        ``torch.nn.Linear``).

        ``seed_keep`` drives continuous debloating (Section 9): names kept
        by a previous run.  If the seeded configuration still satisfies
        the oracle it is adopted after one probe; otherwise the seeded
        components are ordered first so the new DD search converges fast.
        """
        file = self.bundle.module_file(dotted)
        original_source = file.read_text(encoding="utf-8")
        decomposition = decompose_module(
            original_source, filename=str(file), granularity=self._granularity
        )

        removable = decomposition.removable(set(protected))
        if extra_protected is not None:
            removable = [c for c in removable if not extra_protected(c)]
        pinned = [c for c in decomposition.components if c not in set(removable)]

        if not removable:
            return ModuleDebloatResult(
                module=dotted,
                file=file,
                attributes_before=decomposition.attribute_count,
                attributes_after=decomposition.attribute_count,
                protected=sorted(protected),
                kept=[c.name for c in decomposition.components],
                skipped_reason="no removable attributes",
            )

        # Step 2: back up the original file for per-iteration retrieval.
        backup = backup_path(file)
        backup.write_text(original_source, encoding="utf-8")

        virtual_before = self.runner.meter.time_s
        wall_before = time.perf_counter()

        def oracle(candidate: Sequence[AttributeComponent]) -> bool:
            kept_components = pinned + list(candidate)
            source = rebuild_source(decomposition, kept_components)
            file.write_text(source, encoding="utf-8")
            return self.runner.check(self.bundle).passed

        if seed_keep is not None:
            seed_set = set(seed_keep)
            seed_components = [c for c in removable if c.name in seed_set]
            if len(seed_components) < len(removable) and oracle(seed_components):
                # The previous minimal still passes: adopt it directly.
                final_keep = pinned + seed_components
                file.write_text(
                    rebuild_source(decomposition, final_keep), encoding="utf-8"
                )
                backup.unlink()
                return ModuleDebloatResult(
                    module=dotted,
                    file=file,
                    attributes_before=decomposition.attribute_count,
                    attributes_after=len(final_keep),
                    protected=sorted(protected),
                    removed=sorted(
                        c.name
                        for c in decomposition.components
                        if c not in set(final_keep)
                    ),
                    kept=sorted(c.name for c in final_keep),
                    oracle_calls=1,
                    debloat_time_s=self.runner.meter.time_s - virtual_before,
                    wall_time_s=time.perf_counter() - wall_before,
                    seeded=True,
                )
            # Seed rejected (oracle extended / handler changed): restore the
            # original and re-search with seeded components ordered first.
            file.write_text(original_source, encoding="utf-8")
            removable = seed_components + [
                c for c in removable if c.name not in seed_set
            ]

        try:
            debugger = DeltaDebugger(
                oracle,
                record_trace=self._record_trace,
                max_oracle_calls=self._max_calls,
            )
            outcome = debugger.minimize(removable)
        except ValueError as exc:
            # The full set failed: the working bundle no longer matches the
            # oracle (e.g. a previous module broke it).  Restore and report.
            file.write_text(original_source, encoding="utf-8")
            backup.unlink()
            raise DebloatError(f"oracle rejects unmodified {dotted}: {exc}") from exc
        except BaseException:
            file.write_text(original_source, encoding="utf-8")
            backup.unlink()
            raise

        # Materialize the winning configuration.
        final_keep = pinned + list(outcome.minimal)
        file.write_text(rebuild_source(decomposition, final_keep), encoding="utf-8")
        backup.unlink()

        kept_names = sorted(c.name for c in final_keep)
        removed_names = sorted(
            c.name for c in decomposition.components if c not in set(final_keep)
        )
        return ModuleDebloatResult(
            module=dotted,
            file=file,
            attributes_before=decomposition.attribute_count,
            attributes_after=len(final_keep),
            protected=sorted(protected),
            removed=removed_names,
            kept=kept_names,
            oracle_calls=outcome.oracle_calls,
            cache_hits=outcome.cache_hits,
            dd_iterations=outcome.iterations,
            debloat_time_s=self.runner.meter.time_s - virtual_before,
            wall_time_s=time.perf_counter() - wall_before,
            trace=outcome.trace,
        )
