"""The DD-based module debloater (Sections 5.3 and 6.3).

For each module the profiler selects, the debloater:

1. loads the module's file and decomposes it into attribute components
   (Section 6.1);
2. journals a BEGIN record so an interrupted search is recoverable;
3. builds the set of potentially redundant attributes — everything except
   the attributes in the call-graph output and the magic attributes;
4. runs DD: each query rewrites the file with the candidate attribute set
   (a single AST traversal) and re-runs the oracle, appending the verdict
   to the write-ahead probe journal;
5. commits the winning configuration with an atomic write-temp + fsync +
   rename, followed by a journaled COMMIT record carrying the final
   file's content hash.

Module rewrites are transactional: a crash at any boundary leaves the
file either pristine (recovered from the journal on resume) or exactly
the committed content — never a torn mix.  The legacy in-place ``.bak``
backup scheme (``backup_path`` / ``restore_module``) is kept only as a
compatibility shim; orphaned backups from old interrupted runs are
removed by :func:`repro.core.journal.cleanup_stale_artifacts`.

The winning configuration is left on disk; a
:class:`ModuleDebloatResult` records the attribute counts before/after
(Table 3), the oracle statistics, and the virtual time the DD search spent
executing oracle probes (Table 3's debloating time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.bundle import AppBundle
from repro.core.ast_transform import rebuild_source
from repro.core.dd import DDTraceStep, DeltaDebugger
from repro.core.granularity import (
    GRANULARITY_ATTRIBUTE,
    AttributeComponent,
    decompose_module,
)
from repro.core.journal import (
    ProbeJournal,
    atomic_write_text,
    candidate_hash,
    text_sha256,
)
from repro.core.oracle import OracleRunner
from repro.errors import DebloatError

__all__ = ["ModuleDebloatResult", "ModuleDebloater", "restore_module"]

BACKUP_SUFFIX = ".lambdatrim.orig"

#: Journal granularity marker for the single seed-adoption probe
#: (continuous debloating), which runs outside the DD partition loop.
SEED_PROBE_GRANULARITY = 0


@dataclass
class ModuleDebloatResult:
    """Outcome of debloating a single module."""

    module: str
    file: Path
    attributes_before: int
    attributes_after: int
    protected: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    kept: list[str] = field(default_factory=list)
    oracle_calls: int = 0
    cache_hits: int = 0
    dd_iterations: int = 0
    debloat_time_s: float = 0.0  # virtual seconds of oracle execution
    wall_time_s: float = 0.0
    skipped_reason: str | None = None
    seeded: bool = False  # adopted a previous run's kept set (Section 9)
    trace: list[DDTraceStep] = field(default_factory=list)
    #: Probes answered from the write-ahead journal instead of a live
    #: oracle run (kill-and-resume accounting: journal_hits +
    #: oracle_calls equals the uninterrupted run's probe count).
    journal_hits: int = 0
    #: Live probes that disagreed with a journaled verdict and were
    #: adjudicated by the quorum vote.
    flaky_probes: int = 0
    #: True when the whole result was reconstructed from a journaled
    #: COMMIT record (the module was finished before the crash).
    resumed: bool = False

    @property
    def removed_count(self) -> int:
        return len(self.removed)

    @property
    def skipped(self) -> bool:
        return self.skipped_reason is not None

    def summary(self) -> str:
        if self.skipped:
            return f"{self.module}: skipped ({self.skipped_reason})"
        line = (
            f"{self.module}: {self.attributes_after}/{self.attributes_before} "
            f"attributes kept, {self.oracle_calls} oracle calls"
        )
        if self.resumed:
            line += " (resumed from journal)"
        elif self.journal_hits:
            line += f" ({self.journal_hits} journal hits)"
        return line

    # -- journal serialisation --------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form stored in the journal's COMMIT record.

        The DD trace is deliberately dropped — it can be megabytes and a
        resumed run never replays it.
        """
        return {
            "module": self.module,
            "file": str(self.file),
            "attributes_before": self.attributes_before,
            "attributes_after": self.attributes_after,
            "protected": list(self.protected),
            "removed": list(self.removed),
            "kept": list(self.kept),
            "oracle_calls": self.oracle_calls,
            "cache_hits": self.cache_hits,
            "dd_iterations": self.dd_iterations,
            "debloat_time_s": self.debloat_time_s,
            "wall_time_s": self.wall_time_s,
            "skipped_reason": self.skipped_reason,
            "seeded": self.seeded,
            "journal_hits": self.journal_hits,
            "flaky_probes": self.flaky_probes,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ModuleDebloatResult":
        return cls(
            module=data["module"],
            file=Path(data["file"]),
            attributes_before=int(data["attributes_before"]),
            attributes_after=int(data["attributes_after"]),
            protected=list(data.get("protected", [])),
            removed=list(data.get("removed", [])),
            kept=list(data.get("kept", [])),
            oracle_calls=int(data.get("oracle_calls", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            dd_iterations=int(data.get("dd_iterations", 0)),
            debloat_time_s=float(data.get("debloat_time_s", 0.0)),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            skipped_reason=data.get("skipped_reason"),
            seeded=bool(data.get("seeded", False)),
            journal_hits=int(data.get("journal_hits", 0)),
            flaky_probes=int(data.get("flaky_probes", 0)),
        )


def backup_path(file: Path) -> Path:
    """Legacy ``.bak`` location (compatibility shim; no longer written)."""
    return file.with_name(file.name + BACKUP_SUFFIX)


def restore_module(file: Path) -> bool:
    """Restore a module from a legacy λ-trim backup; True if one existed.

    Kept as a compatibility shim for callers of the pre-journal backup
    scheme.  New code recovers interrupted runs through
    :func:`repro.core.journal.recover_workspace`, which also removes any
    orphaned backups this shim's era left behind.
    """
    backup = backup_path(file)
    if not backup.exists():
        return False
    atomic_write_text(file, backup.read_text(encoding="utf-8"), durable=True)
    backup.unlink()
    return True


class ModuleDebloater:
    """Runs attribute-level DD over modules of a working bundle.

    Parameters
    ----------
    bundle:
        The *working* bundle whose files are rewritten in place.  Callers
        clone the pristine bundle first (see
        :class:`repro.core.pipeline.LambdaTrim`).
    runner:
        Oracle runner whose expected outputs came from the pristine bundle.
    record_trace:
        Keep the full DD trace per module (Figure 6 walkthroughs).
    max_oracle_calls_per_module:
        Budget for each module's DD search; the best candidate found within
        the budget is kept.
    journal:
        Write-ahead probe journal; when set, every live probe and each
        module's BEGIN/COMMIT are durably recorded so a killed run can
        resume without losing work.
    seed:
        The run's scoring seed, stamped into probe records for provenance.
    verify_seeds / quorum:
        Flaky-oracle defence: with ``verify_seeds=True`` journal-sourced
        verdicts are re-checked live and disagreements decided by a
        majority vote over up to ``quorum`` runs (see
        :class:`~repro.core.dd.DeltaDebugger`).
    """

    def __init__(
        self,
        bundle: AppBundle,
        runner: OracleRunner,
        *,
        record_trace: bool = False,
        max_oracle_calls_per_module: int | None = None,
        granularity: str = GRANULARITY_ATTRIBUTE,
        journal: ProbeJournal | None = None,
        seed: int = 0,
        verify_seeds: bool = False,
        quorum: int = 3,
    ):
        self.bundle = bundle
        self.runner = runner
        self._record_trace = record_trace
        self._max_calls = max_oracle_calls_per_module
        self._granularity = granularity
        self._journal = journal
        self._seed = seed
        self._verify_seeds = verify_seeds
        self._quorum = quorum

    @staticmethod
    def component_key(components: Sequence[AttributeComponent]) -> str:
        """Stable candidate hash: what the journal stores per probe."""
        return candidate_hash(c.key for c in components)

    def debloat_module(
        self,
        dotted: str,
        protected: set[str] | frozenset[str] = frozenset(),
        *,
        extra_protected: Callable[[AttributeComponent], bool] | None = None,
        seed_keep: list[str] | None = None,
        journal_seeds: Mapping[str, bool] | None = None,
    ) -> ModuleDebloatResult:
        """Debloat one module, leaving the minimized file on disk.

        ``extra_protected`` lets the caller pin additional components by
        inspection — the pipeline uses it to protect from-import aliases
        whose origin attribute the call graph marks as accessed (e.g.
        keep ``from torch.nn import Linear`` because the application uses
        ``torch.nn.Linear``).

        ``seed_keep`` drives continuous debloating (Section 9): names kept
        by a previous run.  If the seeded configuration still satisfies
        the oracle it is adopted after one probe; otherwise the seeded
        components are ordered first so the new DD search converges fast.

        ``journal_seeds`` replays a crashed run's probe verdicts
        (candidate hash → verdict) into the DD cache, so resume continues
        the search instead of re-probing.
        """
        file = self.bundle.module_file(dotted)
        original_source = file.read_text(encoding="utf-8")
        decomposition = decompose_module(
            original_source, filename=str(file), granularity=self._granularity
        )

        removable = decomposition.removable(set(protected))
        if extra_protected is not None:
            removable = [c for c in removable if not extra_protected(c)]
        pinned = [c for c in decomposition.components if c not in set(removable)]

        if not removable:
            return ModuleDebloatResult(
                module=dotted,
                file=file,
                attributes_before=decomposition.attribute_count,
                attributes_after=decomposition.attribute_count,
                protected=sorted(protected),
                kept=[c.name for c in decomposition.components],
                skipped_reason="no removable attributes",
            )

        journal_seeds = dict(journal_seeds or {})
        if self._journal is not None:
            self._journal.module_begin(dotted)

        virtual_before = self.runner.meter.time_s
        wall_before = time.perf_counter()

        def oracle(candidate: Sequence[AttributeComponent]) -> bool:
            kept_components = pinned + list(candidate)
            source = rebuild_source(decomposition, kept_components)
            # Atomic rename (no fsync): a probe rewrite may be lost to a
            # crash — the journal replays it — but never observed torn.
            atomic_write_text(file, source, durable=False)
            return self.runner.check(self.bundle).passed

        def journal_probe(key: str, verdict: bool, granularity: int) -> None:
            if self._journal is not None:
                self._journal.record_probe(
                    dotted, key, verdict, granularity=granularity, seed=self._seed
                )

        seed_journal_hits = 0
        if seed_keep is not None:
            seed_set = set(seed_keep)
            seed_components = [c for c in removable if c.name in seed_set]
            if len(seed_components) < len(removable):
                seed_key = self.component_key(seed_components)
                seed_verdict = journal_seeds.get(seed_key)
                if seed_verdict is None:
                    seed_verdict = oracle(seed_components)
                    journal_probe(
                        seed_key, seed_verdict, SEED_PROBE_GRANULARITY
                    )
                    seed_calls = 1
                else:
                    seed_calls = 0
                    seed_journal_hits = 1
                if seed_verdict:
                    # The previous minimal still passes: adopt it directly.
                    return self._commit(
                        dotted,
                        file,
                        decomposition,
                        protected,
                        final_keep=pinned + seed_components,
                        oracle_calls=seed_calls,
                        journal_hits=seed_journal_hits,
                        virtual_before=virtual_before,
                        wall_before=wall_before,
                        seeded=True,
                    )
            # Seed rejected (oracle extended / handler changed): restore the
            # original and re-search with seeded components ordered first.
            atomic_write_text(file, original_source, durable=False)
            removable = seed_components + [
                c for c in removable if c.name not in seed_set
            ]

        try:
            debugger = DeltaDebugger(
                oracle,
                record_trace=self._record_trace,
                max_oracle_calls=self._max_calls,
                key_fn=self.component_key,
                seed_verdicts=journal_seeds,
                verify_seeds=self._verify_seeds,
                quorum=self._quorum,
                on_probe=journal_probe,
            )
            outcome = debugger.minimize(removable)
        except ValueError as exc:
            # The full set failed: the working bundle no longer matches the
            # oracle (e.g. a previous module broke it).  Restore and report.
            atomic_write_text(file, original_source, durable=False)
            raise DebloatError(f"oracle rejects unmodified {dotted}: {exc}") from exc
        except BaseException:
            atomic_write_text(file, original_source, durable=False)
            raise

        return self._commit(
            dotted,
            file,
            decomposition,
            protected,
            final_keep=pinned + list(outcome.minimal),
            oracle_calls=outcome.oracle_calls,
            cache_hits=outcome.cache_hits,
            journal_hits=outcome.journal_hits + seed_journal_hits,
            flaky_probes=outcome.flaky_probes,
            dd_iterations=outcome.iterations,
            virtual_before=virtual_before,
            wall_before=wall_before,
            trace=outcome.trace,
        )

    def _commit(
        self,
        dotted: str,
        file: Path,
        decomposition,
        protected,
        *,
        final_keep: list[AttributeComponent],
        oracle_calls: int,
        cache_hits: int = 0,
        journal_hits: int = 0,
        flaky_probes: int = 0,
        dd_iterations: int = 0,
        virtual_before: float,
        wall_before: float,
        seeded: bool = False,
        trace: list[DDTraceStep] | None = None,
    ) -> ModuleDebloatResult:
        """Transactionally materialize the winning configuration.

        The durable atomic write lands first; the journal COMMIT record
        (with the final content hash) follows, making the rewrite
        all-or-nothing: a crash before the COMMIT rolls the module back
        to pristine on resume, a crash after it keeps the committed file.
        """
        final_source = rebuild_source(decomposition, final_keep)
        atomic_write_text(file, final_source, durable=True)
        result = ModuleDebloatResult(
            module=dotted,
            file=file,
            attributes_before=decomposition.attribute_count,
            attributes_after=len(final_keep),
            protected=sorted(protected),
            removed=sorted(
                c.name
                for c in decomposition.components
                if c not in set(final_keep)
            ),
            kept=sorted(c.name for c in final_keep),
            oracle_calls=oracle_calls,
            cache_hits=cache_hits,
            dd_iterations=dd_iterations,
            debloat_time_s=self.runner.meter.time_s - virtual_before,
            wall_time_s=time.perf_counter() - wall_before,
            seeded=seeded,
            trace=list(trace or []),
            journal_hits=journal_hits,
            flaky_probes=flaky_probes,
        )
        if self._journal is not None:
            self._journal.module_commit(
                dotted, text_sha256(final_source), result.to_dict()
            )
        return result
