"""Marginal monetary cost and module ranking (Section 5.2, Eq. 2).

The profiler measures each imported module's marginal import time ``t`` and
memory footprint ``m`` (inclusive of its submodules).  With ``T`` and ``M``
the totals over all imported modules, the *marginal monetary cost* of a
module is::

    TM - (T - t)(M - m)                                        (Eq. 2)

i.e. how much of the duration x memory product (the billable quantity of
Eq. 1) disappears if the module and everything it alone pulls in vanish.

Four scoring methods are provided for the Figure 9 ablation: ``time``,
``memory``, ``combined`` (Eq. 2), and ``random``.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.errors import AnalysisError

__all__ = [
    "ModuleProfile",
    "ProfileReport",
    "ScoringMethod",
    "marginal_monetary_cost",
    "score_module",
    "rank_modules",
]


def marginal_monetary_cost(t: float, m: float, T: float, M: float) -> float:
    """Eq. 2: the billable-product reduction from removing one module."""
    if t < 0 or m < 0:
        raise AnalysisError(f"negative marginal measurements: t={t}, m={m}")
    return T * M - (T - t) * (M - m)


@dataclass(frozen=True)
class ModuleProfile:
    """Marginal measurements for one imported module.

    ``import_time_s`` and ``memory_mb`` are *inclusive*: they cover the
    module body and every submodule whose first import it triggered
    ("modules and all their submodules").  The exclusive fields isolate the
    module's own body.
    """

    module: str
    import_time_s: float
    memory_mb: float
    exclusive_time_s: float = 0.0
    exclusive_memory_mb: float = 0.0
    depth: int = 0

    @property
    def top_level(self) -> str:
        return self.module.split(".")[0]


@dataclass
class ProfileReport:
    """Profiles for every module an application's initialization imported."""

    profiles: list[ModuleProfile] = field(default_factory=list)
    total_time_s: float = 0.0  # T: the whole Function Initialization time
    total_memory_mb: float = 0.0  # M: the whole initialization footprint

    def __post_init__(self) -> None:
        self._by_module = {p.module: p for p in self.profiles}

    def __iter__(self):
        return iter(self.profiles)

    def __len__(self) -> int:
        return len(self.profiles)

    def get(self, module: str) -> ModuleProfile | None:
        return self._by_module.get(module)

    def modules(self) -> list[str]:
        return [p.module for p in self.profiles]

    def marginal_cost(self, profile: ModuleProfile) -> float:
        return marginal_monetary_cost(
            profile.import_time_s,
            profile.memory_mb,
            self.total_time_s,
            self.total_memory_mb,
        )


class ScoringMethod(str, enum.Enum):
    """Module-ranking strategies ablated in Section 8.2 / Figure 9."""

    TIME = "time"
    MEMORY = "memory"
    COMBINED = "combined"
    RANDOM = "random"


def score_module(
    profile: ModuleProfile,
    method: ScoringMethod,
    report: ProfileReport,
    rng: random.Random | None = None,
) -> float:
    """Score one module under *method* (higher = more worth debloating)."""
    if method is ScoringMethod.TIME:
        return profile.import_time_s
    if method is ScoringMethod.MEMORY:
        return profile.memory_mb
    if method is ScoringMethod.COMBINED:
        return report.marginal_cost(profile)
    if method is ScoringMethod.RANDOM:
        if rng is None:
            raise AnalysisError("random scoring requires an RNG")
        return rng.random()
    raise AnalysisError(f"unknown scoring method: {method!r}")


def rank_modules(
    report: ProfileReport,
    *,
    method: ScoringMethod = ScoringMethod.COMBINED,
    k: int | None = None,
    seed: int = 0,
) -> list[ModuleProfile]:
    """Top-K module ranking under a scoring method (Section 5.2).

    Ties break by module name for determinism.  ``k=None`` returns the full
    ranking.
    """
    if k is not None and k < 0:
        raise AnalysisError(f"k must be non-negative, got {k}")
    rng = random.Random(seed)
    scored = [
        (score_module(profile, method, report, rng), profile)
        for profile in report.profiles
    ]
    scored.sort(key=lambda pair: (-pair[0], pair[1].module))
    ranked = [profile for _, profile in scored]
    return ranked if k is None else ranked[:k]
