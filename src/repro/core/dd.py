"""The generic Delta Debugging algorithm (Algorithm 1 of the paper).

Given a list of program components ``A`` and an oracle ``O`` that returns
``True`` when the program assembled from a candidate subset still behaves
correctly, DD finds a *1-minimal* subset: removing any single remaining
component makes the oracle fail.

The divide-and-conquer loop follows Algorithm 1 exactly:

1. split the candidate ``A`` into ``n`` partitions;
2. if some partition ``a_i`` alone passes the oracle, recurse on it with
   ``n = 2`` ("reduce to subset");
3. else if some complement ``A \\ a_i`` passes, recurse on it with
   ``n = n - 1`` ("reduce to complement");
4. else double the granularity (``n = 2n``) until ``n`` exceeds ``|A|``.

Every tested configuration is cached (as in the paper's Figure 6, where
already-tested ``n = 2`` sets are skipped), and an optional trace records
each step for visualisation and testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, Mapping, Sequence, TypeVar

from repro.errors import OracleError
from repro.obs import get_recorder

__all__ = ["DeltaDebugger", "DDOutcome", "DDTraceStep", "ddmin_keep", "split_partitions"]

T = TypeVar("T", bound=Hashable)

OracleFn = Callable[[Sequence[T]], bool]

#: Maps a candidate component sequence to its cache key.  The default is
#: ``frozenset``; the debloater substitutes a content hash so journaled
#: verdicts survive process restarts (components are re-derived on resume).
KeyFn = Callable[[Sequence[T]], Hashable]

#: Probe listener ``(key, verdict, granularity)`` invoked after every
#: *live* oracle run — the write-ahead journal's feed.
ProbeListener = Callable[[Hashable, bool, int], None]


def split_partitions(items: Sequence[T], n: int) -> list[list[T]]:
    """Split *items* into *n* contiguous partitions of near-equal size.

    The first ``len(items) % n`` partitions get one extra element, matching
    the canonical ddmin partitioning.  Requires ``1 <= n <= len(items)``.
    """
    if n < 1:
        raise ValueError(f"partition count must be >= 1, got {n}")
    if n > len(items):
        raise ValueError(f"cannot split {len(items)} items into {n} partitions")
    base, extra = divmod(len(items), n)
    partitions: list[list[T]] = []
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        partitions.append(list(items[start : start + size]))
        start += size
    return partitions


@dataclass(frozen=True)
class DDTraceStep:
    """One oracle query in the DD search, for walkthroughs (Figure 6)."""

    step: int
    granularity: int
    kind: str  # "subset" | "complement" | "initial"
    tested: tuple[T, ...]
    passed: bool
    cached: bool = False


@dataclass
class DDOutcome(Generic[T]):
    """Result of a DD minimization run."""

    minimal: list[T]
    oracle_calls: int
    cache_hits: int
    iterations: int
    trace: list[DDTraceStep] = field(default_factory=list)
    cache_misses: int = 0
    #: Probes answered from a journal-seeded cache (first lookup of each
    #: seeded candidate): these were real oracle calls in the run that
    #: wrote the journal, so ``journal_hits + oracle_calls`` equals the
    #: uninterrupted run's probe count after a kill-and-resume.
    journal_hits: int = 0
    #: Live probes whose verdict disagreed with a journaled/cached verdict
    #: and were adjudicated by the quorum re-run vote.
    flaky_probes: int = 0

    @property
    def cache_lookups(self) -> int:
        """Total configuration-cache queries (hits + misses)."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups served without an oracle run."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def removed_count(self) -> int | None:
        """Set by callers that know the original size; None until then."""
        return getattr(self, "_removed_count", None)


class DeltaDebugger(Generic[T]):
    """Algorithm 1: DD-based program minimization with configuration caching.

    Parameters
    ----------
    oracle:
        Callable receiving the candidate *kept* component sequence and
        returning ``True`` when the resulting program is still correct.
    record_trace:
        Record every oracle query as a :class:`DDTraceStep`.
    max_oracle_calls:
        Abort the search (returning the best candidate so far) after this
        many oracle invocations; ``None`` means unbounded.
    check_initial:
        Verify the full component set passes the oracle before minimizing
        (a failing baseline means the oracle spec itself is broken).
    treat_as_failure:
        Exception types from the oracle that mean "this *candidate* is
        bad", not "the search is broken".  A debloated candidate can hang
        (infinite loop where a guard used to be) or crash the probe
        harness — :class:`~repro.errors.OracleTimeout` /
        :class:`~repro.errors.OracleError` — and the right response is to
        record the candidate as failing and keep reducing, exactly as if
        the oracle had returned ``False``.  The verdict is cached like
        any other, so the hanging configuration is never probed twice.
    key_fn:
        Maps a candidate to its cache key (default ``frozenset``).  The
        debloater passes a content hash so the cache can be seeded from a
        write-ahead journal across process restarts.
    seed_verdicts:
        Journal-sourced cache (key → verdict) replayed into the search.
        The first lookup of each seeded key is counted as a *journal hit*
        and — because it stands in for a real oracle call of the crashed
        run — consumes ``max_oracle_calls`` budget, so a resumed search
        truncates at exactly the same point as an uninterrupted one.
    verify_seeds:
        Treat seeded verdicts as advisory instead of authoritative: the
        probe still runs live, and a disagreement triggers the flaky
        quorum (re-run up to ``quorum`` times, majority vote, ties
        resolve to *failing* — the safe direction, keeping components).
    quorum:
        Total live runs used to adjudicate a seed disagreement.
    on_probe:
        ``(key, verdict, granularity)`` listener invoked after every live
        oracle run — the write-ahead journal's append hook.
    """

    def __init__(
        self,
        oracle: OracleFn,
        *,
        record_trace: bool = False,
        max_oracle_calls: int | None = None,
        check_initial: bool = True,
        treat_as_failure: tuple[type[BaseException], ...] = (OracleError,),
        key_fn: KeyFn | None = None,
        seed_verdicts: Mapping[Hashable, bool] | None = None,
        verify_seeds: bool = False,
        quorum: int = 3,
        on_probe: ProbeListener | None = None,
    ) -> None:
        self._oracle = oracle
        self._record_trace = record_trace
        self._max_oracle_calls = max_oracle_calls
        self._check_initial = check_initial
        self._treat_as_failure = tuple(treat_as_failure)
        self._key_fn: KeyFn = key_fn if key_fn is not None else frozenset
        self._verify_seeds = verify_seeds
        self._quorum = max(quorum, 1)
        self._on_probe = on_probe
        self._cache: dict[Hashable, bool] = {}
        self._seeds: dict[Hashable, bool] = dict(seed_verdicts or {})
        self._seed_pending: set[Hashable] = set(self._seeds)
        if not verify_seeds:
            # Trusted seeds answer lookups directly from the cache.
            self._cache.update(self._seeds)
        self._calls = 0
        self._cache_hits = 0
        self._journal_hits = 0
        self._flaky = 0
        self._trace: list[DDTraceStep] = []
        self._step = 0

    # -- public statistics ---------------------------------------------------

    @property
    def oracle_calls(self) -> int:
        """Oracle invocations so far (cache hits excluded)."""
        return self._calls

    @property
    def cache_hits(self) -> int:
        """Configuration-cache lookups answered without an oracle run."""
        return self._cache_hits

    @property
    def cache_misses(self) -> int:
        """Configuration-cache lookups that required an oracle run."""
        return self._calls

    @property
    def cache_size(self) -> int:
        """Distinct configurations tested (and remembered) so far."""
        return len(self._cache)

    @property
    def journal_hits(self) -> int:
        """Lookups answered by the journal-seeded cache (first hit each)."""
        return self._journal_hits

    @property
    def flaky_probes(self) -> int:
        """Seed disagreements adjudicated by the quorum vote."""
        return self._flaky

    # -- oracle plumbing ----------------------------------------------------

    def _query(self, candidate: Sequence[T], granularity: int, kind: str) -> bool:
        key = self._key_fn(candidate)
        cached = key in self._cache
        if cached:
            if key in self._seed_pending:
                # First lookup of a journaled probe: it stands in for a
                # real oracle call of the crashed run (budget included).
                self._seed_pending.discard(key)
                self._journal_hits += 1
            else:
                self._cache_hits += 1
            result = self._cache[key]
        else:
            if (
                self._max_oracle_calls is not None
                and self._calls + self._journal_hits >= self._max_oracle_calls
            ):
                raise _OracleBudgetExhausted()
            self._calls += 1
            try:
                result = bool(self._oracle(candidate))
            except self._treat_as_failure:
                result = False
            result = self._reconcile_seed(key, candidate, result)
            self._cache[key] = result
            if self._on_probe is not None:
                self._on_probe(key, result, granularity)
        if self._record_trace:
            self._step += 1
            self._trace.append(
                DDTraceStep(
                    step=self._step,
                    granularity=granularity,
                    kind=kind,
                    tested=tuple(candidate),
                    passed=result,
                    cached=cached,
                )
            )
        return result

    def _reconcile_seed(self, key: Hashable, candidate: Sequence[T], live: bool) -> bool:
        """Adjudicate a live verdict against an advisory seeded verdict.

        Only active with ``verify_seeds=True``.  Agreement adopts the live
        verdict; disagreement marks the probe flaky and re-runs the oracle
        up to ``quorum`` times total, deciding by majority over the live
        runs plus the seeded vote.  A tie resolves to ``False`` — the
        conservative direction: a wrong "fail" merely keeps a component,
        a wrong "pass" would remove needed code.
        """
        if not self._verify_seeds or key not in self._seeds:
            return live
        seed = self._seeds.pop(key)
        self._seed_pending.discard(key)
        if live == seed:
            return live
        self._flaky += 1
        votes = [live, seed]
        for _ in range(self._quorum - 1):
            self._calls += 1
            try:
                votes.append(bool(self._oracle(candidate)))
            except self._treat_as_failure:
                votes.append(False)
        get_recorder().counter_add("dd.flaky_probes")
        return votes.count(True) > votes.count(False)

    # -- the algorithm -------------------------------------------------------

    def minimize(self, components: Sequence[T]) -> DDOutcome[T]:
        """Run Algorithm 1 over *components*; returns the 1-minimal subset."""
        recorder = get_recorder()
        if not recorder.enabled:
            return self._minimize(components)
        calls_before, hits_before = self._calls, self._cache_hits
        journal_before = self._journal_hits
        with recorder.span("dd.minimize", components=len(components)) as span:
            outcome = self._minimize(components)
            if span is not None:
                span.set_attr("minimal", len(outcome.minimal))
                span.set_attr("oracle_calls", outcome.oracle_calls)
                if outcome.journal_hits:
                    span.set_attr("journal_hits", outcome.journal_hits)
            recorder.counter_add("dd.minimize_runs")
            recorder.counter_add("dd.oracle_calls", self._calls - calls_before)
            recorder.counter_add("dd.cache_hits", self._cache_hits - hits_before)
            recorder.counter_add("dd.cache_misses", self._calls - calls_before)
            recorder.counter_add(
                "dd.journal_hits", self._journal_hits - journal_before
            )
            recorder.counter_add(
                "dd.components_removed", len(components) - len(outcome.minimal)
            )
        return outcome

    def _minimize(self, components: Sequence[T]) -> DDOutcome[T]:
        candidate = list(components)
        iterations = 0

        try:
            if self._check_initial and not self._query(candidate, 1, "initial"):
                raise ValueError(
                    "oracle rejects the full component set; the baseline "
                    "program does not satisfy the specification"
                )

            # An empty program that still passes is trivially minimal and
            # common in debloating (no redundant attribute is needed).
            if candidate and self._query([], len(candidate), "subset"):
                candidate = []

            n = 2
            while len(candidate) >= 2:
                iterations += 1
                n = min(n, len(candidate))
                partitions = split_partitions(candidate, n)

                reduced = False
                # Step 1: try each partition alone (lines 4-6 of Algorithm 1).
                for part in partitions:
                    if self._query(part, n, "subset"):
                        candidate = part
                        n = 2
                        reduced = True
                        break

                # Step 2: try each complement (lines 7-8).
                if not reduced and n > 2:
                    for i in range(n):
                        complement = [
                            item
                            for j, part in enumerate(partitions)
                            for item in part
                            if j != i
                        ]
                        if self._query(complement, n, "complement"):
                            candidate = complement
                            n = max(n - 1, 2)
                            reduced = True
                            break

                # Step 3: increase granularity or stop (lines 9-12).
                if not reduced:
                    if n >= len(candidate):
                        break
                    n = min(2 * n, len(candidate))
        except _OracleBudgetExhausted:
            pass

        outcome = DDOutcome(
            minimal=candidate,
            oracle_calls=self._calls,
            cache_hits=self._cache_hits,
            iterations=iterations,
            trace=list(self._trace),
            cache_misses=self._calls,
            journal_hits=self._journal_hits,
            flaky_probes=self._flaky,
        )
        return outcome


class _OracleBudgetExhausted(Exception):
    """Internal: raised when ``max_oracle_calls`` is hit mid-search."""


def ddmin_keep(
    components: Sequence[T],
    oracle: OracleFn,
    *,
    record_trace: bool = False,
    max_oracle_calls: int | None = None,
) -> DDOutcome[T]:
    """Convenience wrapper: minimize *components* under *oracle*."""
    debugger = DeltaDebugger(
        oracle,
        record_trace=record_trace,
        max_oracle_calls=max_oracle_calls,
    )
    return debugger.minimize(components)
