"""Intra-module parallel delta debugging (Section 9 future work).

"First, we will parallelize DD both intra-(multiple sets of attributes of
the same module in parallel) and inter-(multiple modules in parallel)
modules."

This module implements the *intra* direction:

* :class:`BatchDeltaDebugger` restates Algorithm 1 so that each phase's
  probes — the ``n`` subsets, then the ``n`` complements — are evaluated
  as one batch.  The search is semantically identical to the sequential
  algorithm (the first passing probe *in index order* wins), but a batch
  may evaluate probes the sequential algorithm would have skipped: extra
  oracle calls traded for wall-clock time.

* :class:`ParallelModuleDebloater` supplies the batch oracle: ``workers``
  clones of the working bundle, each probe rewriting its own clone's
  module file and executing in a **separate OS process** (the in-process
  executor shares an interpreter, so real parallelism needs real
  processes).

Inter-module parallelism is intentionally left out, as the paper notes it
"requires very meticulous handling of module dependencies".
"""

from __future__ import annotations

import queue
import shutil
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Generic, Hashable, Mapping, Sequence, TypeVar

from repro.bundle import AppBundle
from repro.core.ast_transform import rebuild_source
from repro.core.dd import DDOutcome, split_partitions
from repro.core.granularity import GRANULARITY_ATTRIBUTE, decompose_module
from repro.core.debloater import ModuleDebloatResult
from repro.core.journal import (
    ProbeJournal,
    atomic_write_text,
    candidate_hash,
    text_sha256,
)
from repro.core.oracle import OracleSpec
from repro.core.subprocess_runner import run_in_subprocess
from repro.errors import DebloatError, OracleError
from repro.obs import get_recorder

__all__ = ["BatchDeltaDebugger", "ParallelModuleDebloater"]

T = TypeVar("T")

BatchOracleFn = Callable[[list[list[T]]], list[bool]]


class BatchDeltaDebugger(Generic[T]):
    """Algorithm 1 with per-phase batch evaluation.

    Accepts the same journal plumbing as the sequential
    :class:`~repro.core.dd.DeltaDebugger`: a ``key_fn`` to key the cache
    by content hash, journal-sourced ``seed_verdicts`` (always trusted —
    the quorum adjudication is sequential-only), and an ``on_probe``
    listener feeding the write-ahead journal.  Journal hits consume the
    oracle-call budget so a resumed search truncates where the
    uninterrupted one would.
    """

    def __init__(
        self,
        batch_oracle: BatchOracleFn,
        *,
        max_oracle_calls: int | None = None,
        key_fn: Callable[[Sequence[T]], Hashable] | None = None,
        seed_verdicts: Mapping[Hashable, bool] | None = None,
        on_probe: Callable[[Hashable, bool, int], None] | None = None,
    ):
        self._batch_oracle = batch_oracle
        self._max_calls = max_oracle_calls
        self._key_fn = key_fn if key_fn is not None else frozenset
        self._on_probe = on_probe
        self._cache: dict[Hashable, bool] = dict(seed_verdicts or {})
        self._seed_pending: set[Hashable] = set(self._cache)
        self.oracle_calls = 0
        self.cache_hits = 0
        self.journal_hits = 0
        self.batches = 0

    @property
    def cache_misses(self) -> int:
        """Cache lookups that went to the batch oracle (== oracle calls)."""
        return self.oracle_calls

    @property
    def cache_size(self) -> int:
        """Distinct configurations tested (and remembered) so far."""
        return len(self._cache)

    def _query_batch(
        self, candidates: list[list[T]], granularity: int = 0
    ) -> list[bool]:
        """Evaluate candidates, consulting the cache; preserves order."""
        fresh: list[list[T]] = []
        fresh_keys: list[Hashable] = []
        seen_in_batch: set[Hashable] = set()
        for candidate in candidates:
            key = self._key_fn(candidate)
            if key in self._cache:
                if key in self._seed_pending:
                    self._seed_pending.discard(key)
                    self.journal_hits += 1
                else:
                    self.cache_hits += 1
            elif key not in seen_in_batch:
                fresh.append(candidate)
                fresh_keys.append(key)
                seen_in_batch.add(key)

        if fresh:
            if (
                self._max_calls is not None
                and self.oracle_calls + self.journal_hits + len(fresh)
                > self._max_calls
            ):
                raise _BudgetExhausted()
            self.batches += 1
            self.oracle_calls += len(fresh)
            recorder = get_recorder()
            with recorder.span("dd.batch", probes=len(fresh)):
                results = self._batch_oracle(fresh)
            recorder.counter_add("batch_dd.batches")
            recorder.counter_add("batch_dd.probes", len(fresh))
            if len(results) != len(fresh):
                raise DebloatError(
                    "batch oracle returned a result count mismatch"
                )
            for key, passed in zip(fresh_keys, results):
                self._cache[key] = bool(passed)
                if self._on_probe is not None:
                    self._on_probe(key, bool(passed), granularity)

        return [self._cache[self._key_fn(c)] for c in candidates]

    def minimize(self, components: Sequence[T]) -> DDOutcome[T]:
        recorder = get_recorder()
        if not recorder.enabled:
            return self._minimize(components)
        calls_before, hits_before = self.oracle_calls, self.cache_hits
        with recorder.span("batch_dd.minimize", components=len(components)) as span:
            outcome = self._minimize(components)
            if span is not None:
                span.set_attr("minimal", len(outcome.minimal))
                span.set_attr("oracle_calls", outcome.oracle_calls)
            recorder.counter_add("dd.minimize_runs")
            recorder.counter_add("dd.oracle_calls", self.oracle_calls - calls_before)
            recorder.counter_add("dd.cache_hits", self.cache_hits - hits_before)
            recorder.counter_add("dd.cache_misses", self.oracle_calls - calls_before)
            recorder.counter_add("dd.journal_hits", self.journal_hits)
            recorder.counter_add(
                "dd.components_removed", len(components) - len(outcome.minimal)
            )
        return outcome

    def _minimize(self, components: Sequence[T]) -> DDOutcome[T]:
        candidate = list(components)
        iterations = 0
        try:
            initial = self._query_batch([candidate], 1)[0]
            if not initial:
                raise ValueError(
                    "oracle rejects the full component set; the baseline "
                    "program does not satisfy the specification"
                )
            if candidate and self._query_batch([[]], len(candidate))[0]:
                candidate = []

            n = 2
            while len(candidate) >= 2:
                iterations += 1
                n = min(n, len(candidate))
                partitions = split_partitions(candidate, n)

                verdicts = self._query_batch([list(p) for p in partitions], n)
                winner = next(
                    (i for i, passed in enumerate(verdicts) if passed), None
                )
                if winner is not None:
                    candidate = partitions[winner]
                    n = 2
                    continue

                if n > 2:
                    complements = [
                        [
                            item
                            for j, part in enumerate(partitions)
                            for item in part
                            if j != i
                        ]
                        for i in range(n)
                    ]
                    verdicts = self._query_batch(complements, n)
                    winner = next(
                        (i for i, passed in enumerate(verdicts) if passed), None
                    )
                    if winner is not None:
                        candidate = complements[winner]
                        n = max(n - 1, 2)
                        continue

                if n >= len(candidate):
                    break
                n = min(2 * n, len(candidate))
        except _BudgetExhausted:
            pass

        return DDOutcome(
            minimal=candidate,
            oracle_calls=self.oracle_calls,
            cache_hits=self.cache_hits,
            iterations=iterations,
            cache_misses=self.oracle_calls,
            journal_hits=self.journal_hits,
        )


class _BudgetExhausted(Exception):
    """Internal: the oracle-call budget was hit mid-search."""


class ParallelModuleDebloater:
    """Debloats one module at a time with parallel subprocess probes.

    Parameters
    ----------
    working:
        The bundle whose files the winning configuration lands in.
    reference:
        The pristine bundle defining expected outputs.
    workers:
        Concurrent probes (= worker bundle clones = OS processes in flight).
    """

    def __init__(
        self,
        working: AppBundle,
        reference: AppBundle,
        *,
        spec: OracleSpec | None = None,
        workers: int = 4,
        granularity: str = GRANULARITY_ATTRIBUTE,
        max_oracle_calls_per_module: int | None = None,
        journal: ProbeJournal | None = None,
        seed: int = 0,
    ):
        if workers < 1:
            raise DebloatError(f"need at least one worker, got {workers}")
        self.working = working
        self.workers = workers
        self._granularity = granularity
        self._max_calls = max_oracle_calls_per_module
        self._journal = journal
        self._seed = seed
        self.spec = spec if spec is not None else OracleSpec.from_bundle(reference)

        self._expected: dict[str, dict] = {}
        for case in self.spec:
            result = run_in_subprocess(reference, case.event, case.context)
            observable = result["observable"]
            if observable.get("error_type") or observable.get("init_error_type"):
                raise OracleError(
                    f"reference bundle fails oracle case {case.name!r}"
                )
            self._expected[case.name] = observable

    # -- probe machinery --------------------------------------------------

    def _probe(self, worker: AppBundle, module: str, source: str) -> bool:
        """One candidate: rewrite the worker's module file and run all cases."""
        worker.module_file(module).write_text(source, encoding="utf-8")
        for case in self.spec:
            result = run_in_subprocess(worker, case.event, case.context)
            if result["observable"] != self._expected[case.name]:
                return False
        return True

    def debloat_module(
        self,
        dotted: str,
        protected: set[str] | frozenset[str] = frozenset(),
        *,
        journal_seeds: Mapping[str, bool] | None = None,
    ) -> ModuleDebloatResult:
        file = self.working.module_file(dotted)
        original_source = file.read_text(encoding="utf-8")
        decomposition = decompose_module(
            original_source, filename=str(file), granularity=self._granularity
        )
        removable = decomposition.removable(set(protected))
        pinned = [c for c in decomposition.components if c not in set(removable)]
        if not removable:
            return ModuleDebloatResult(
                module=dotted,
                file=file,
                attributes_before=decomposition.attribute_count,
                attributes_after=decomposition.attribute_count,
                protected=sorted(protected),
                kept=[c.name for c in decomposition.components],
                skipped_reason="no removable attributes",
            )

        wall_before = time.perf_counter()
        # One clone of the current working state per worker slot.
        clone_root = self.working.root.parent / f".parallel-{self.working.name}"
        shutil.rmtree(clone_root, ignore_errors=True)
        slots: queue.Queue[AppBundle] = queue.Queue()
        for i in range(self.workers):
            slots.put(self.working.clone(clone_root / f"worker-{i}"))

        def evaluate_one(candidate: list) -> bool:
            source = rebuild_source(decomposition, pinned + list(candidate))
            worker = slots.get()
            try:
                return self._probe(worker, dotted, source)
            except OracleError:
                # A hanging or probe-crashing candidate (OracleTimeout /
                # OracleError) is just a failing candidate: report False so
                # the batch DD keeps reducing instead of aborting the module.
                return False
            finally:
                slots.put(worker)

        def batch_oracle(candidates: list[list]) -> list[bool]:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                return list(pool.map(evaluate_one, candidates))

        def component_key(candidate: Sequence) -> str:
            return candidate_hash(c.key for c in candidate)

        on_probe = None
        if self._journal is not None:
            self._journal.module_begin(dotted)

            def on_probe(key, verdict, granularity):
                self._journal.record_probe(
                    dotted, key, verdict, granularity=granularity, seed=self._seed
                )

        try:
            debugger = BatchDeltaDebugger(
                batch_oracle,
                max_oracle_calls=self._max_calls,
                key_fn=component_key,
                seed_verdicts=journal_seeds,
                on_probe=on_probe,
            )
            with get_recorder().span(
                "debloat", label=dotted, workers=self.workers
            ) as span:
                outcome = debugger.minimize(removable)
                if span is not None:
                    span.set_attr("batches", debugger.batches)
        except ValueError as exc:
            raise DebloatError(f"oracle rejects unmodified {dotted}: {exc}") from exc
        finally:
            shutil.rmtree(clone_root, ignore_errors=True)

        final_keep = pinned + list(outcome.minimal)
        final_source = rebuild_source(decomposition, final_keep)
        atomic_write_text(file, final_source, durable=True)
        result = ModuleDebloatResult(
            module=dotted,
            file=file,
            attributes_before=decomposition.attribute_count,
            attributes_after=len(final_keep),
            protected=sorted(protected),
            removed=sorted(
                c.name for c in decomposition.components if c not in set(final_keep)
            ),
            kept=sorted(c.name for c in final_keep),
            oracle_calls=outcome.oracle_calls,
            cache_hits=outcome.cache_hits,
            journal_hits=outcome.journal_hits,
            dd_iterations=outcome.iterations,
            wall_time_s=time.perf_counter() - wall_before,
        )
        if self._journal is not None:
            self._journal.module_commit(
                dotted, text_sha256(final_source), result.to_dict()
            )
        return result
