"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``trim``      run the λ-trim pipeline on an application bundle
``analyze``   static analysis + profiler ranking (no debloating)
``measure``   cold/warm-start metrics on the platform emulator
``invoke``    deploy a bundle and invoke it once
``oracle``    check a candidate bundle against a reference's oracle
``fuzz``      differential-fuzz an optimized bundle; optionally extend
              the oracle with the findings (Section 5.4)
``tune``      recommend a memory configuration (AWS-power-tuning-style)
``replay``    replay a multi-function fleet trace on the sharded engine
``profile``   render cold-start cost attribution (flame graphs, dollar
              tables, before/after-trim diffs)
``trace``     run the pipeline under a recorder and print the span tree
``metrics``   render counters/gauges from a JSON-lines telemetry export
``dashboard`` render a fleet-telemetry export (optionally vs. a baseline)
``report``    regenerate the full evaluation report (every artifact)
``build-app`` materialise one of the 21 Table 1 benchmark applications
``apps``      list the benchmark applications

``trim --log FILE`` enables continuous debloating (Section 9): the run is
seeded by the previous run's kept sets and the log is updated in place.

``trim --resume`` replays the write-ahead probe journal of an interrupted
run (``<output>.journal.jsonl`` by default): committed modules are adopted
wholesale, torn files are rolled back, and DD continues from the journaled
probe cache.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import __version__
from repro.analysis.measure import measure_cold, measure_warm
from repro.bundle import AppBundle
from repro.core.cost_model import ScoringMethod, rank_modules
from repro.core.oracle import OracleRunner
from repro.core.pipeline import LambdaTrim, TrimConfig
from repro.errors import ReproError
from repro.platform import LambdaEmulator

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="lambda-trim: cost-driven debloating for serverless Python",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    trim = commands.add_parser("trim", help="debloat an application bundle")
    trim.add_argument("bundle", type=Path, help="application bundle directory")
    trim.add_argument("-o", "--output", type=Path, required=True,
                      help="directory for the optimized bundle")
    trim.add_argument("--k", type=int, default=20,
                      help="number of top modules to debloat (default 20)")
    trim.add_argument("--scoring", choices=[m.value for m in ScoringMethod],
                      default="combined", help="profiler scoring method")
    trim.add_argument("--granularity", choices=["attribute", "statement"],
                      default="attribute", help="DD granularity (Section 6.1)")
    trim.add_argument("--budget", type=int, default=None,
                      help="max oracle calls per module (default unbounded)")
    trim.add_argument("--no-call-graph", action="store_true",
                      help="disable PyCG-style pre-filtering (ablation)")
    trim.add_argument("--seed", type=int, default=0, help="random-scoring seed")
    trim.add_argument("--log", type=Path, default=None,
                      help="trim log from a previous run (continuous "
                           "debloating); updated in place after the run")
    trim.add_argument("--resume", action="store_true",
                      help="resume an interrupted run from its write-ahead "
                           "probe journal instead of starting over")
    trim.add_argument("--journal", type=Path, default=None,
                      help="probe-journal path (default: "
                           "<output>.journal.jsonl next to the output)")
    trim.add_argument("--verify-probes", action="store_true",
                      help="re-check journaled verdicts live and settle "
                           "disagreements by quorum vote (flaky oracles)")

    analyze = commands.add_parser("analyze", help="static analysis + profiling")
    analyze.add_argument("bundle", type=Path)
    analyze.add_argument("--top", type=int, default=20,
                         help="show the top-N modules by marginal cost")

    measure = commands.add_parser("measure", help="cold/warm metrics")
    measure.add_argument("bundle", type=Path)
    measure.add_argument("--invocations", type=int, default=3)

    invoke = commands.add_parser("invoke", help="deploy and invoke once")
    invoke.add_argument("bundle", type=Path)
    invoke.add_argument("--event", type=str, default=None,
                        help="JSON event (default: first oracle case)")
    invoke.add_argument("--warm", action="store_true",
                        help="invoke twice and report the warm start")

    oracle = commands.add_parser("oracle", help="oracle equivalence check")
    oracle.add_argument("reference", type=Path, help="reference (pristine) bundle")
    oracle.add_argument("candidate", type=Path, help="candidate (optimized) bundle")

    fuzz = commands.add_parser(
        "fuzz", help="differential-fuzz an optimized bundle (Section 5.4)"
    )
    fuzz.add_argument("reference", type=Path, help="reference (pristine) bundle")
    fuzz.add_argument("candidate", type=Path, help="candidate (optimized) bundle")
    fuzz.add_argument("--budget", type=int, default=20,
                      help="mutants per oracle case (default 20)")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--extend-oracle", action="store_true",
                      help="append findings to the reference's oracle.json")

    tune = commands.add_parser(
        "tune", help="recommend a memory configuration (power tuning)"
    )
    tune.add_argument("bundle", type=Path)
    tune.add_argument("--strategy", choices=["cost", "speed", "balanced"],
                      default="balanced")

    trace = commands.add_parser(
        "trace", help="run the λ-trim pipeline with tracing and print the span tree"
    )
    trace.add_argument("bundle", type=Path, help="application bundle directory")
    trace.add_argument("-o", "--output", type=Path, default=None,
                       help="write the telemetry as JSON-lines to this file")
    trace.add_argument("--trim-output", type=Path, default=None,
                       help="directory for the optimized bundle "
                            "(default: a temporary directory)")
    trace.add_argument("--k", type=int, default=20,
                       help="number of top modules to debloat (default 20)")
    trace.add_argument("--granularity", choices=["attribute", "statement"],
                       default="attribute", help="DD granularity (Section 6.1)")
    trace.add_argument("--budget", type=int, default=None,
                       help="max oracle calls per module (default unbounded)")
    trace.add_argument("--metrics", action="store_true",
                       help="also print the counters/gauges table")
    trace.add_argument("--json", action="store_true",
                       help="emit one JSON object (spans, events, metrics) "
                            "instead of the rendered tree")

    metrics = commands.add_parser(
        "metrics", help="render metrics from a JSON-lines telemetry export"
    )
    metrics.add_argument("file", type=Path, help="JSON-lines file from "
                         "`repro trace -o` or the benchmark suite")
    metrics.add_argument("--json", action="store_true",
                         help="emit a single JSON object instead of a table")

    replay = commands.add_parser(
        "replay", help="replay a multi-function fleet trace (sharded engine)"
    )
    replay.add_argument("bundle", type=Path, help="application bundle directory")
    replay.add_argument("--trace", type=Path, default=None,
                        help="fleet trace JSONL from FleetTrace.save() "
                             "(default: generate an Azure-style fleet)")
    replay.add_argument("--functions", type=int, default=None,
                        help="generate a fleet with this many functions")
    replay.add_argument("--invocations", type=int, default=None,
                        help="generate a fleet totalling at least this many "
                             "invocations")
    replay.add_argument("--max-per-function", type=int, default=None,
                        help="drop generated functions busier than this")
    replay.add_argument("--seed", type=int, default=2025,
                        help="trace-generation seed (default 2025)")
    replay.add_argument("--workers", type=int, default=1,
                        help="replay processes; whole functions are sharded "
                             "across them (default 1 = inline)")
    replay.add_argument("--window", type=float, default=3600.0,
                        help="telemetry window seconds (default 3600)")
    replay.add_argument("--keep-alive", type=float, default=None,
                        help="warm keep-alive seconds (default: emulator's)")
    replay.add_argument("--event", type=str, default=None,
                        help="JSON event (default: first oracle case)")
    replay.add_argument("--export", type=Path, default=None,
                        help="save the merged FleetReport here "
                             "(renderable with `repro dashboard`)")
    replay.add_argument("--log-dir", type=Path, default=None,
                        help="stream per-function record shards to this "
                             "directory as JSON lines")
    replay.add_argument("--merged-log", type=Path, default=None,
                        help="k-way merge the shards into one "
                             "timestamp-ordered JSONL (requires --log-dir)")
    replay.add_argument("--spill-threshold", type=int, default=None,
                        help="spill worker logs to disk every N records "
                             "(bounded memory; requires --log-dir)")
    replay.add_argument("--record-detail", action="store_true",
                        help="emit the per-invocation observability event "
                             "(slower; off by default for fleet scale)")
    replay.add_argument("--engine",
                        choices=("auto", "kernel", "vector", "reference"),
                        default="auto",
                        help="replay engine: auto picks the numpy batch "
                             "engine (or the scalar template kernel without "
                             "numpy) when the workload is replayable "
                             "(default), vector/kernel require that engine, "
                             "reference forces real execution; exports are "
                             "byte-identical either way")
    replay.add_argument("--min-shard-invocations", type=int, default=None,
                        help="cap the shard count so each worker gets at "
                             "least this many invocations (below the "
                             "break-even point extra workers slow replay "
                             "down; see benchmarks/results/BENCH_replay.json)")
    replay.add_argument("--profile-dir", type=Path, default=None,
                        help="spool per-function cold-start cost profiles "
                             "to this directory as JSON lines")
    replay.add_argument("--merged-profiles", type=Path, default=None,
                        help="merge the profile spools into one store "
                             "(requires --profile-dir; renderable with "
                             "`repro profile`)")
    replay.add_argument("--hosts", type=int, default=None,
                        help="place instances on this many memory-constrained "
                             "hosts per function (default: unconstrained)")
    replay.add_argument("--host-memory-mb", type=float, default=512.0,
                        help="memory per host in MB (default 512; "
                             "requires --hosts)")
    replay.add_argument("--placement",
                        choices=("first-fit", "best-fit", "spread"),
                        default="first-fit",
                        help="bin-packing policy for --hosts (default "
                             "first-fit)")
    replay.add_argument("--fault-plan", type=Path, default=None,
                        help="JSON FaultPlan file (FaultPlan.to_json); "
                             "includes host crash/spot faults")
    replay.add_argument("--retry-attempts", type=int, default=None,
                        help="client-side retry attempts per request "
                             "(default: no retries)")
    replay.add_argument("--dead-letters", type=Path, default=None,
                        help="write dead-lettered requests (full attempt "
                             "history) to this JSONL file")
    replay.add_argument("--checkpoint-dir", type=Path, default=None,
                        help="snapshot engine state here so a killed replay "
                             "can be resumed (workers that die mid-run are "
                             "resumed automatically)")
    replay.add_argument("--checkpoint-every", type=int, default=None,
                        help="invocations between checkpoints (default 1000; "
                             "requires --checkpoint-dir)")
    replay.add_argument("--resume", action="store_true",
                        help="resume a killed replay from --checkpoint-dir; "
                             "exports are byte-identical to an uninterrupted "
                             "run")
    replay.add_argument("--json", action="store_true",
                        help="emit the run summary as JSON")

    profile = commands.add_parser(
        "profile",
        help="cold-start cost attribution: flame graphs and dollar tables",
    )
    profile.add_argument("profiles", type=Path,
                         help="profiles JSONL from `repro replay "
                              "--profile-dir/--merged-profiles`")
    profile.add_argument("--flame", type=Path, default=None,
                         help="write folded stacks (flamegraph.pl / "
                              "speedscope) to this file")
    profile.add_argument("--chrome", type=Path, default=None,
                         help="write a Chrome trace_event JSON "
                              "(chrome://tracing, Perfetto) to this file")
    profile.add_argument("--top", type=int, default=10,
                         help="rows in the top-modules-by-cost table "
                              "(default 10)")
    profile.add_argument("--diff", type=Path, default=None,
                         help="baseline profiles JSONL: render the "
                              "dollars-saved-per-dependency table instead")
    profile.add_argument("--function", default=None,
                         help="scope to one function's cold starts")
    profile.add_argument("--json", action="store_true",
                         help="emit the summary as JSON")

    dashboard = commands.add_parser(
        "dashboard", help="render a fleet-telemetry export (tables + sparklines)"
    )
    dashboard.add_argument("export", type=Path,
                           help="telemetry export from TelemetrySink.save(), "
                                "or a record JSONL log from `repro replay "
                                "--log-dir/--merged-log` (detected and "
                                "streamed into windows)")
    dashboard.add_argument("--window", type=float, default=3600.0,
                           help="window seconds when reading a record JSONL "
                                "log (default 3600)")
    dashboard.add_argument("--baseline", type=Path, default=None,
                           help="earlier export to compare against "
                                "(before/after-debloat view)")
    dashboard.add_argument("--function", default=None,
                           help="scope to one function (default: fleet-wide)")
    dashboard.add_argument("--profiles", type=Path, default=None,
                           help="cold-start profiles JSONL from `repro replay "
                                "--merged-profiles`: breaches drill down to "
                                "their exemplars' costliest modules")
    dashboard.add_argument("--json", action="store_true",
                           help="emit the run-level summary as JSON")

    build = commands.add_parser("build-app", help="materialise a benchmark app")
    build.add_argument("name", help="Table 1 application name")
    build.add_argument("directory", type=Path, help="target directory")

    commands.add_parser("apps", help="list the 21 benchmark applications")

    report = commands.add_parser(
        "report", help="regenerate the full evaluation report (all artifacts)"
    )
    report.add_argument("-o", "--output", type=Path, default=Path("report.md"))
    report.add_argument("--quick", action="store_true",
                        help="cheap artifacts only (no app sweeps)")
    return parser


def _cmd_trim(args: argparse.Namespace) -> int:
    config = TrimConfig(
        k=args.k,
        scoring=ScoringMethod(args.scoring),
        seed=args.seed,
        use_call_graph=not args.no_call_graph,
        max_oracle_calls_per_module=args.budget,
        granularity=args.granularity,
        verify_journal_probes=args.verify_probes,
    )
    bundle = AppBundle(args.bundle)
    run_kwargs = {"resume": args.resume, "journal_path": args.journal}
    if args.log is not None:
        from repro.core.incremental import IncrementalTrim, TrimLog

        log = TrimLog.load(args.log) if args.log.exists() else None
        trimmer = IncrementalTrim(config, log=log)
        report = trimmer.run(bundle, args.output, **run_kwargs)
        trimmer.updated_log(report).save(args.log)
        seeded = sum(1 for r in report.module_results if r.seeded)
        print(f"continuous debloating: {seeded} module(s) adopted from the log")
    else:
        report = LambdaTrim(config).run(bundle, args.output, **run_kwargs)
    print(report.summary())
    if args.resume and report.resumed:
        print(f"resumed from journal {report.journal_path}: "
              f"{report.resumed_modules} module(s) adopted, "
              f"{report.journal_hits} journaled probe(s) replayed")
    print(f"optimized bundle written to {report.output_root}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.core.fuzzer import OracleFuzzer
    from repro.core.oracle import OracleSpec

    reference = AppBundle(args.reference)
    candidate = AppBundle(args.candidate)
    fuzzer = OracleFuzzer(reference, candidate, seed=args.seed)
    report = fuzzer.fuzz(budget_per_case=args.budget)
    print(f"executed {report.executed} mutants: "
          f"{len(report.findings)} divergence(s)")
    for finding in report.findings:
        marker = " [would trigger fallback]" if finding.triggers_fallback else ""
        print(f"  event {json.dumps(finding.event)}{marker}")
    if report.findings and args.extend_oracle:
        spec = OracleSpec.from_bundle(reference)
        for case in report.suggested_cases():
            spec.add_case(case)
        spec.save(reference.oracle_path)
        print(f"oracle extended with {len(report.suggested_cases())} case(s); "
              "re-run `repro trim` to harden the bundle")
    return 0 if report.clean else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    bundle = AppBundle(args.bundle)
    trim = LambdaTrim()
    external, graph = trim.analyze(bundle)
    print(f"external modules: {', '.join(external) or '(none)'}")

    report = trim.profile(bundle, external)
    print(f"initialization: {report.total_time_s:.3f}s, "
          f"{report.total_memory_mb:.1f}MB over {len(report)} modules\n")
    print(f"{'module':40s} {'t(s)':>8s} {'m(MB)':>8s} {'marginal cost':>14s}")
    for profile in rank_modules(report, k=args.top):
        print(f"{profile.module:40s} {profile.import_time_s:8.3f} "
              f"{profile.memory_mb:8.2f} {report.marginal_cost(profile):14.4f}")
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    bundle = AppBundle(args.bundle)
    cold = measure_cold(bundle, invocations=args.invocations)
    warm = measure_warm(bundle, invocations=args.invocations)
    print(f"cold start ({args.invocations} forced): "
          f"e2e {cold.e2e_s:.3f}s, init {cold.import_s:.3f}s, "
          f"exec {cold.exec_s:.3f}s, peak {cold.memory_mb:.1f}MB")
    print(f"billing: {cold.configured_mb}MB configured, "
          f"{cold.billed_s * 1000:.0f}ms billed, "
          f"${cold.cost_per_100k:.4f} per 100K invocations")
    print(f"warm start: e2e {warm.e2e_s:.3f}s")
    return 0


def _cmd_invoke(args: argparse.Namespace) -> int:
    bundle = AppBundle(args.bundle)
    if args.event is not None:
        event = json.loads(args.event)
    else:
        from repro.core.oracle import OracleSpec

        event = OracleSpec.from_bundle(bundle).cases[0].event
    emulator = LambdaEmulator()
    emulator.deploy(bundle)
    record = emulator.invoke(bundle.name, event)
    if args.warm:
        record = emulator.invoke(bundle.name, event)
    print(record.report_line())
    print(f"value: {json.dumps(record.value)}")
    return 0 if record.ok else 1


def _cmd_oracle(args: argparse.Namespace) -> int:
    runner = OracleRunner(AppBundle(args.reference))
    result = runner.check(AppBundle(args.candidate))
    for outcome in result.outcomes:
        print(outcome.describe())
    print("PASS" if result.passed else "FAIL")
    return 0 if result.passed else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.platform.tuning import recommend_memory

    bundle = AppBundle(args.bundle)
    stats = measure_cold(bundle, invocations=2)
    recommendation = recommend_memory(
        init_time_s=stats.import_s,
        exec_time_s=stats.exec_s,
        footprint_mb=stats.memory_mb,
        strategy=args.strategy,
    )
    print(f"measured: init {stats.import_s:.3f}s, exec {stats.exec_s:.3f}s, "
          f"peak {stats.memory_mb:.1f}MB")
    for configured, cost, duration in recommendation.sweep:
        marker = " <-- recommended" if configured == recommendation.configured_mb else ""
        print(f"  {configured:6d} MB: ${cost:.3e}/invocation, "
              f"{duration * 1000:7.0f} ms{marker}")
    print(recommendation.describe())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import tempfile

    from repro.obs import (
        InMemoryRecorder,
        render_metrics,
        render_tree,
        use_recorder,
        write_jsonl,
    )

    bundle = AppBundle(args.bundle)
    config = TrimConfig(
        k=args.k,
        granularity=args.granularity,
        max_oracle_calls_per_module=args.budget,
    )
    trim_output = (
        args.trim_output
        if args.trim_output is not None
        else Path(tempfile.mkdtemp(prefix="repro-trace-")) / "trimmed"
    )
    recorder = InMemoryRecorder()
    with use_recorder(recorder):
        report = LambdaTrim(config).run(bundle, trim_output)

    if args.output is not None:
        try:
            path = write_jsonl(recorder, args.output)
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
    if args.json:
        from repro.obs import dump_from_recorder

        dump = dump_from_recorder(recorder)
        print(json.dumps({
            "verify_passed": report.verify_passed,
            "output_root": str(report.output_root),
            "spans": [span.to_dict() for span in dump.spans],
            "events": [event.to_dict() for event in dump.events],
            "counters": dump.counters,
            "gauges": dump.gauges,
        }, sort_keys=True))
        return 0 if report.verify_passed else 1
    print(render_tree(recorder))
    if args.metrics:
        print()
        print(render_metrics(recorder))
    if args.output is not None:
        print(f"\ntelemetry written to {path}")
    print(f"optimized bundle written to {report.output_root}")
    return 0 if report.verify_passed else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import load_jsonl, render_metrics

    try:
        dump = load_jsonl(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(dump.metrics, indent=2, sort_keys=True))
    else:
        print(render_metrics(dump))
        print(f"\n{len(dump.spans)} span(s), {len(dump.events)} event(s)")
    return 0


def _summarize_export(report) -> dict:
    from repro.platform.slo import FLEET
    from repro.platform.slo import metric_value as slo_metric

    summary: dict = {
        "invocations": report.invocations,
        "window_s": report.window_s,
        "windows": len(report.rollups(FLEET)),
        "functions": report.functions(),
        "breaches": [breach.to_dict() for breach in report.breaches],
    }
    if report.rollups(FLEET):
        total = report.overall(FLEET)
        summary["overall"] = {
            metric: slo_metric(total, metric)
            for metric in (
                "cold_start_rate", "error_rate", "cost_usd", "cost_per_1k",
                "concurrency_peak", "e2e_p50", "e2e_p95", "e2e_p99",
                "cold_e2e_p99",
            )
        }
        summary["status_counts"] = dict(sorted(total.status_counts.items()))
    if report.meta:
        summary["meta"] = report.meta
    return summary


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.platform.fleet import replay_fleet
    from repro.traces import FleetTrace

    bundle = AppBundle(args.bundle)
    if args.trace is not None:
        trace = FleetTrace.load(args.trace)
    elif args.invocations is not None:
        trace = FleetTrace.generate_invocations(
            args.invocations,
            seed=args.seed,
            max_per_function=args.max_per_function,
        )
    else:
        trace = FleetTrace.generate(
            args.functions if args.functions is not None else 50,
            seed=args.seed,
        )
        if args.max_per_function is not None:
            trace = trace.capped(args.max_per_function)

    if args.event is not None:
        event = json.loads(args.event)
    else:
        from repro.core.oracle import OracleSpec

        event = OracleSpec.from_bundle(bundle).cases[0].event

    faults = None
    if args.fault_plan is not None:
        from repro.platform.faults import FaultPlan

        try:
            plan_text = args.fault_plan.read_text(encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot read {args.fault_plan}: {exc}", file=sys.stderr)
            return 2
        # Malformed plans raise PlatformError -> one-line error, exit 2.
        faults = FaultPlan.from_json(plan_text)
    hosts = None
    if args.hosts is not None:
        from repro.platform.hosts import HostConfig

        hosts = HostConfig(
            count=args.hosts,
            memory_mb=args.host_memory_mb,
            placement=args.placement,
        )
    retry = None
    if args.retry_attempts is not None:
        from repro.platform.retry import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retry_attempts)

    kwargs: dict = {}
    if args.keep_alive is not None:
        kwargs["keep_alive_s"] = args.keep_alive
    result = replay_fleet(
        bundle,
        trace,
        event,
        workers=args.workers,
        window_s=args.window,
        retry=retry,
        faults=faults,
        hosts=hosts,
        dead_letters=args.dead_letters,
        record_detail=args.record_detail,
        log_dir=args.log_dir,
        merged_log=args.merged_log,
        profile_dir=args.profile_dir,
        merged_profiles=args.merged_profiles,
        spill_threshold=args.spill_threshold,
        engine=args.engine,
        min_shard_invocations=args.min_shard_invocations,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        **kwargs,
    )
    if args.export is not None:
        result.report.save(args.export)

    if args.json:
        summary = {
            "functions": len(trace),
            "arrivals": result.arrivals,
            "delivered": result.delivered,
            "records": result.records,
            "status_counts": dict(sorted(result.status_counts().items())),
            "total_cost_usd": result.total_cost,
            "workers": result.workers,
            "wall_s": round(result.wall_s, 3),
            "throughput_per_s": round(result.throughput, 1),
        }
        if "hosts" in result.report.meta:
            summary["hosts"] = result.report.meta["hosts"]
        if "dead_letters" in result.report.meta:
            summary["dead_letters"] = result.report.meta["dead_letters"]
        if "resume" in result.report.meta:
            summary["resume"] = result.report.meta["resume"]
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"replayed {result.arrivals} arrivals across {len(trace)} "
              f"function(s) on {result.workers} worker(s) "
              f"in {result.wall_s:.2f}s ({result.throughput:,.0f}/s)")
        print(f"delivered {result.delivered}, {result.records} record(s), "
              f"total cost ${result.total_cost:.6f}")
        for status, count in sorted(result.status_counts().items()):
            print(f"  {status:12s} {count}")
        hosts_meta = result.report.meta.get("hosts")
        if hosts_meta is not None:
            print(f"hosts [{hosts_meta['placement']}]: "
                  f"{hosts_meta['hosts_per_function']} x "
                  f"{hosts_meta['memory_mb']:.0f}MB per function — "
                  f"{hosts_meta['placements']} placement(s), "
                  f"{hosts_meta['evictions']} eviction(s), "
                  f"{hosts_meta['instances_lost']} instance(s) lost, "
                  f"{hosts_meta['capacity_throttles']} capacity throttle(s)")
        if result.dead_letters is not None:
            print(f"{result.report.meta.get('dead_letters', 0)} dead "
                  f"letter(s) written to {result.dead_letters}")
        resume_meta = result.report.meta.get("resume")
        if resume_meta is not None:
            print(f"checkpointed: {resume_meta['resumed_shards']} shard(s) "
                  f"resumed, {resume_meta['reexecuted_invocations']} "
                  f"invocation(s) re-executed")
        if args.export is not None:
            print(f"telemetry export written to {args.export}")
        if result.merged_log is not None:
            print(f"merged record log written to {result.merged_log}")
        if result.merged_profiles is not None:
            print(f"merged cold-start profiles written to "
                  f"{result.merged_profiles} (render with `repro profile`)")
    return 0


def _load_profiles(path: Path):
    from repro.obs.attribution import AttributionStore

    return AttributionStore.load_jsonl(path)


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.analysis.dashboard import render_attribution_diff
    from repro.analysis.tables import render_table
    from repro.obs.attribution import AttributionStore
    from repro.obs.flamegraph import write_chrome_trace, write_folded

    try:
        store = _load_profiles(args.profiles)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.profiles}: {exc}", file=sys.stderr)
        return 2
    if args.function is not None:
        scoped = AttributionStore()
        for profile in store.for_function(args.function):
            scoped.record(profile)
        store = scoped

    if args.diff is not None:
        try:
            baseline = _load_profiles(args.diff)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.diff}: {exc}", file=sys.stderr)
            return 2
        print(render_attribution_diff(baseline, store, top=args.top))
        return 0

    top = store.top_modules(args.top)
    if args.json:
        print(json.dumps({
            "profiles": len(store),
            "functions": list(store.functions),
            "total_cost_usd": store.total_cost_usd(),
            "top_modules": [
                {
                    "module": label,
                    "time_s": time_s,
                    "memory_mb": memory_mb,
                    "usd": usd,
                    "cold_starts": count,
                }
                for label, time_s, memory_mb, usd, count in top
            ],
        }, indent=2, sort_keys=True))
    else:
        print(f"{len(store)} cold start(s) across "
              f"{len(store.functions)} function(s), "
              f"total billed ${store.total_cost_usd():.6f}")
        if top:
            print()
            print(render_table(
                ["module", "time", "usd", "cold starts"],
                [
                    [label, f"{time_s:.3f}s", f"${usd:.3e}", str(count)]
                    for label, time_s, _, usd, count in top
                ],
            ))
    try:
        if args.flame is not None:
            lines = write_folded(store, args.flame)
            print(f"folded stacks ({lines} line(s)) written to {args.flame}")
        if args.chrome is not None:
            events = write_chrome_trace(store, args.chrome)
            print(f"chrome trace ({events} event(s)) written to {args.chrome}")
    except OSError as exc:
        print(f"error: cannot write export: {exc}", file=sys.stderr)
        return 2
    return 0


def _looks_like_record_log(path: Path) -> bool:
    """True when *path* starts with an invocation-record JSON line."""
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                return isinstance(data, dict) and "request_id" in data
    except (OSError, ValueError):
        return False
    return False


def _load_telemetry(path: Path, window_s: float):
    from repro.platform.fleet import report_from_log
    from repro.platform.telemetry import FleetReport

    if _looks_like_record_log(path):
        return report_from_log(path, window_s=window_s)
    return FleetReport.load(path)


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.analysis.dashboard import render_comparison, render_dashboard
    from repro.platform.slo import FLEET

    try:
        report = _load_telemetry(args.export, args.window)
        baseline = (
            _load_telemetry(args.baseline, args.window)
            if args.baseline is not None
            else None
        )
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: cannot read telemetry export: {exc}", file=sys.stderr)
        return 2
    profiles = None
    if args.profiles is not None:
        try:
            profiles = _load_profiles(args.profiles)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.profiles}: {exc}", file=sys.stderr)
            return 2
    function = args.function if args.function is not None else FLEET

    if args.json:
        summary = _summarize_export(report)
        if baseline is not None:
            summary = {
                "baseline": _summarize_export(baseline),
                "candidate": summary,
            }
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_dashboard(report, function=function, profiles=profiles))
        if baseline is not None:
            print()
            print("== comparison vs. baseline ==")
            print(render_comparison(baseline, report, function=function))
    # Breaches in the (candidate) export are the alarm: non-zero exit makes
    # `repro dashboard` usable as a CI regression gate.
    return 1 if report.breaches else 0


def _cmd_build_app(args: argparse.Namespace) -> int:
    from repro.workloads.apps import build_app

    bundle = build_app(args.name, args.directory)
    print(f"built {bundle.name} at {bundle.root}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import FULL_SECTIONS, QUICK_SECTIONS, write_report

    sections = QUICK_SECTIONS if args.quick else FULL_SECTIONS
    path = write_report(args.output, sections=sections)
    print(f"report with {len(sections)} artifact(s) written to {path}")
    return 0


def _cmd_apps(_: argparse.Namespace) -> int:
    from repro.workloads.apps import APP_NAMES, app_definition

    for name in APP_NAMES:
        definition = app_definition(name)
        print(f"{name:20s} [{definition.source:11s}] {definition.description}")
    return 0


_HANDLERS = {
    "trim": _cmd_trim,
    "analyze": _cmd_analyze,
    "measure": _cmd_measure,
    "invoke": _cmd_invoke,
    "oracle": _cmd_oracle,
    "fuzz": _cmd_fuzz,
    "tune": _cmd_tune,
    "trace": _cmd_trace,
    "replay": _cmd_replay,
    "profile": _cmd_profile,
    "metrics": _cmd_metrics,
    "dashboard": _cmd_dashboard,
    "build-app": _cmd_build_app,
    "apps": _cmd_apps,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`): exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
