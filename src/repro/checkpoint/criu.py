"""CRIU-style checkpoint/restore simulator (Section 8.6, Figure 12).

The paper's C/R baseline freezes a function after initialization and
restores it on later cold starts.  Two effects define Figure 12's shape:

* restore pays a *fixed* overhead ("CRIU recreates the process tree by
  forking … this procedure incurs an overhead, which seems to be around
  0.1 seconds"), so for small applications C/R is *worse* than a plain
  cold start;
* restore then streams the checkpoint image, so its cost grows with the
  snapshot size — much slower growth than re-running imports, which is why
  pure C/R overtakes pure λ-trim on large applications (lightgbm being the
  exception the paper calls out).

Checkpoint size models a whole-process memory image: a fixed process
overhead, a share of the mapped library image (shared objects, the
interpreter), and the application's live heap.  λ-trim shrinks the heap
term, which is why "debloating always reduces the size of the checkpoint"
(Table 3) but only by ~11% on average.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CheckpointError

__all__ = ["Checkpoint", "CriuSimulator"]


@dataclass(frozen=True)
class Checkpoint:
    """A frozen post-initialization process image."""

    function: str
    size_mb: float
    init_time_saved_s: float

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise CheckpointError(f"negative checkpoint size: {self.size_mb}")


@dataclass(frozen=True)
class CriuSimulator:
    """Checkpoint sizing and restore timing model.

    Parameters
    ----------
    process_overhead_mb:
        Pages every Python process carries (interpreter, allocator).
    image_share:
        Fraction of the deployment image resident as mapped libraries.
    heap_share:
        Fraction of the application's live heap captured in the image.
    restore_fixed_s:
        Process-tree recreation overhead (~0.1 s in the paper).
    restore_mb_per_s:
        Checkpoint streaming bandwidth during restore.
    """

    process_overhead_mb: float = 6.0
    image_share: float = 0.08
    heap_share: float = 0.45
    restore_fixed_s: float = 0.1
    restore_mb_per_s: float = 150.0

    def checkpoint_size_mb(self, memory_mb: float, image_size_mb: float = 0.0) -> float:
        """Size of a post-init snapshot for a given footprint and image."""
        if memory_mb < 0 or image_size_mb < 0:
            raise CheckpointError("memory and image sizes must be non-negative")
        return (
            self.process_overhead_mb
            + self.image_share * image_size_mb
            + self.heap_share * memory_mb
        )

    def checkpoint(
        self,
        function: str,
        *,
        memory_mb: float,
        image_size_mb: float = 0.0,
        init_time_s: float = 0.0,
    ) -> Checkpoint:
        """Freeze a function right after initialization (before the handler)."""
        return Checkpoint(
            function=function,
            size_mb=self.checkpoint_size_mb(memory_mb, image_size_mb),
            init_time_saved_s=init_time_s,
        )

    def restore_time_s(self, checkpoint: Checkpoint) -> float:
        """Cold-start latency when restoring instead of initializing."""
        return self.restore_fixed_s + checkpoint.size_mb / self.restore_mb_per_s

    def initialization_time_s(self, checkpoint: Checkpoint) -> float:
        """What initialization would have cost without the checkpoint."""
        return checkpoint.init_time_saved_s
