"""Checkpoint/restore substrate (the CRIU stand-in of Section 8.6)."""

from repro.checkpoint.criu import Checkpoint, CriuSimulator

__all__ = ["Checkpoint", "CriuSimulator"]
